"""Tests for sharded campaign execution and store merging.

Three layers:

* **Partition properties** (hypothesis): for random specs and shard
  counts, shards are pairwise-disjoint, their union covers the full
  expansion, and assignment is invariant to axis ordering and to adding
  seeds (existing runs never migrate shards).
* **Merge faults**: duplicate rows, crash-truncated tails, empty and
  missing shards; idempotence (``merge . merge == merge``).
* **End-to-end equivalence** (real missions, tiny spec): the merged
  output of shard 1/2 + shard 2/2 is record-for-record identical — run
  hashes, spec payloads, and reports — to the unsharded run, and the
  scenario-batched parallel path reproduces the serial records.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    MERGED_STORE_NAME,
    CampaignSpec,
    CampaignStore,
    aggregate_sweep,
    campaign_dir,
    merge_stores,
    missing_runs,
    parse_shard,
    records_in_spec_order,
    run_campaign,
    shard_index,
    shard_paths,
    shard_store_path,
)
from repro.campaign.runner import _batch_pending

#: A mission configuration that finishes in ~0.1 s and succeeds.
TINY_KWARGS = {"area_width": 40.0, "area_length": 24.0}

WORKLOAD_POOL = [
    "scanning", "mapping", "package_delivery", "search_rescue",
    "aerial_photography",
]
GRID_POOL = [(2, 0.8), (2, 1.5), (3, 1.5), (4, 0.8), (4, 2.2)]
NOISE_POOL = [0.0, 0.25, 0.5]


def tiny_spec(grid=((4, 2.2), (2, 0.8)), seeds=(1, 2)) -> CampaignSpec:
    return CampaignSpec(
        workloads=["scanning"],
        grid=list(grid),
        seeds=list(seeds),
        workload_kwargs={"scanning": dict(TINY_KWARGS)},
    )


# ----------------------------------------------------------------------
# Partition properties (no missions flown — expansion only)
# ----------------------------------------------------------------------
spec_strategy = st.builds(
    CampaignSpec,
    workloads=st.lists(
        st.sampled_from(WORKLOAD_POOL), min_size=1, max_size=3, unique=True
    ),
    grid=st.lists(
        st.sampled_from(GRID_POOL), min_size=1, max_size=3, unique=True
    ),
    seeds=st.lists(
        st.integers(min_value=0, max_value=10_000),
        min_size=1, max_size=4, unique=True,
    ),
    depth_noise_levels=st.lists(
        st.sampled_from(NOISE_POOL), min_size=1, max_size=2, unique=True
    ),
)
shard_counts = st.integers(min_value=1, max_value=7)

# Spec construction validates against the live workload registry, which
# imports the whole stack — slow enough on first call to trip the
# default deadline, and irrelevant to the properties under test.
relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestShardPartitionProperties:
    @relaxed
    @given(spec=spec_strategy, count=shard_counts)
    def test_disjoint_and_covering(self, spec, count):
        all_keys = {r.run_key for r in spec.expand()}
        seen = {}
        for index in range(1, count + 1):
            for run in spec.shard(index, count):
                assert run.run_key not in seen, (
                    f"run {run.run_key} in shards {seen[run.run_key]} "
                    f"and {index}"
                )
                seen[run.run_key] = index
        assert set(seen) == all_keys

    @relaxed
    @given(spec=spec_strategy, count=shard_counts, order_seed=st.randoms())
    def test_assignment_invariant_to_axis_ordering(
        self, spec, count, order_seed
    ):
        def assignment(s):
            return {r.run_key: shard_index(r.run_key, count) for r in s.expand()}

        baseline = assignment(spec)
        shuffled = CampaignSpec(
            workloads=list(spec.workloads),
            grid=list(spec.grid),
            seeds=list(spec.seeds),
            depth_noise_levels=list(spec.depth_noise_levels),
        )
        for axis in (
            shuffled.workloads, shuffled.grid, shuffled.seeds,
            shuffled.depth_noise_levels,
        ):
            order_seed.shuffle(axis)
        assert assignment(shuffled) == baseline

    @relaxed
    @given(
        spec=spec_strategy,
        count=shard_counts,
        extra_seeds=st.lists(
            st.integers(min_value=20_000, max_value=30_000),
            min_size=1, max_size=3, unique=True,
        ),
    )
    def test_adding_seeds_never_migrates_existing_runs(
        self, spec, count, extra_seeds
    ):
        before = {
            run.run_key: index
            for index in range(1, count + 1)
            for run in spec.shard(index, count)
        }
        grown = CampaignSpec(
            workloads=list(spec.workloads),
            grid=list(spec.grid),
            seeds=list(spec.seeds) + extra_seeds,
            depth_noise_levels=list(spec.depth_noise_levels),
        )
        after = {
            run.run_key: index
            for index in range(1, count + 1)
            for run in grown.shard(index, count)
        }
        for key, index in before.items():
            assert after[key] == index, "existing run migrated shards"

    def test_single_shard_is_full_expansion(self):
        spec = tiny_spec()
        assert [r.run_key for r in spec.shard(1, 1)] == [
            r.run_key for r in spec.expand()
        ]

    def test_bad_shard_arguments_rejected(self):
        spec = tiny_spec()
        for index, count in ((0, 2), (3, 2), (-1, 2), (1, 0)):
            with pytest.raises(ValueError):
                spec.shard(index, count)

    def test_parse_shard(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("3/16") == (3, 16)
        for bad in ("0/4", "5/4", "4", "a/b", "1/0", "-1/4", "1/-4", ""):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_campaign_key_stable_and_order_sensitive(self):
        assert tiny_spec().campaign_key == tiny_spec().campaign_key
        reordered = tiny_spec(seeds=(2, 1))
        # The key names the study *as declared*: axis order matters for
        # the key (it changes expansion order) even though it never
        # matters for shard assignment.
        assert reordered.campaign_key != tiny_spec().campaign_key


# ----------------------------------------------------------------------
# Merge faults (synthetic records — no missions flown)
# ----------------------------------------------------------------------
def _record(key, t=1.0, status="ok"):
    record = {
        "run_key": key,
        "status": status,
        "spec": {"workload": "scanning", "seed": 1},
    }
    if status == "ok":
        record["report"] = {"mission_time_s": t}
    else:
        record["error"] = "boom"
    return record


def _write_store(path, records):
    store = CampaignStore(path)
    for record in records:
        store.add(record)
    return path


class TestMergeStores:
    def test_merge_dedupes_by_run_hash(self, tmp_path):
        a = _write_store(tmp_path / "a.jsonl", [_record("k1"), _record("k2")])
        b = _write_store(tmp_path / "b.jsonl", [_record("k2"), _record("k3")])
        report = merge_stores([a, b], tmp_path / "merged.jsonl")
        assert report.records == 3
        assert report.duplicates_dropped == 1
        assert sorted(CampaignStore(tmp_path / "merged.jsonl").keys()) == [
            "k1", "k2", "k3"
        ]

    def test_ok_row_beats_error_row_regardless_of_order(self, tmp_path):
        ok_first = merge_stores(
            [
                _write_store(tmp_path / "a.jsonl", [_record("k", status="ok")]),
                _write_store(tmp_path / "b.jsonl", [_record("k", status="error")]),
            ],
            tmp_path / "m1.jsonl",
        )
        error_first = merge_stores(
            [
                _write_store(tmp_path / "c.jsonl", [_record("k", status="error")]),
                _write_store(tmp_path / "d.jsonl", [_record("k", status="ok")]),
            ],
            tmp_path / "m2.jsonl",
        )
        assert ok_first.records == error_first.records == 1
        for dest in ("m1.jsonl", "m2.jsonl"):
            assert CampaignStore(tmp_path / dest).get("k")["status"] == "ok"

    def test_truncated_tail_tolerated(self, tmp_path):
        a = _write_store(tmp_path / "a.jsonl", [_record("k1")])
        with open(a, "a") as fh:
            fh.write('{"run_key": "k2", "status"')  # killed mid-write
        report = merge_stores([a], tmp_path / "merged.jsonl")
        assert report.records == 1
        assert report.skipped_lines == 1
        assert CampaignStore(tmp_path / "merged.jsonl").keys() == ["k1"]

    def test_empty_and_missing_shards_tolerated(self, tmp_path):
        a = _write_store(tmp_path / "a.jsonl", [_record("k1")])
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        report = merge_stores(
            [a, empty, tmp_path / "never-ran.jsonl"], tmp_path / "merged.jsonl"
        )
        assert report.records == 1
        assert len(report.sources) == 2  # the missing shard is ignored

    def test_merge_is_idempotent(self, tmp_path):
        sources = [
            _write_store(tmp_path / "a.jsonl", [_record("k1"), _record("k3")]),
            _write_store(tmp_path / "b.jsonl", [_record("k2")]),
        ]
        dest = tmp_path / "merged.jsonl"
        merge_stores(sources, dest)
        once = dest.read_bytes()
        merge_stores(sources, dest)  # merge . merge == merge
        assert dest.read_bytes() == once

    def test_merge_output_independent_of_source_order(self, tmp_path):
        a = _write_store(tmp_path / "a.jsonl", [_record("k2"), _record("k1")])
        b = _write_store(tmp_path / "b.jsonl", [_record("k3")])
        merge_stores([a, b], tmp_path / "ab.jsonl")
        merge_stores([b, a], tmp_path / "ba.jsonl")
        assert (tmp_path / "ab.jsonl").read_bytes() == (
            tmp_path / "ba.jsonl"
        ).read_bytes()

    def test_incremental_merge_folds_in_new_shards(self, tmp_path):
        dest = tmp_path / "merged.jsonl"
        merge_stores(
            [_write_store(tmp_path / "a.jsonl", [_record("k1")])], dest
        )
        merge_stores(
            [_write_store(tmp_path / "b.jsonl", [_record("k2")])], dest
        )
        assert sorted(CampaignStore(dest).keys()) == ["k1", "k2"]


# ----------------------------------------------------------------------
# End-to-end equivalence (real missions, tiny spec)
# ----------------------------------------------------------------------
def record_identity(records):
    """What the equivalence invariant compares: run hash -> (spec payload,
    report, status).  Excludes wall_time_s, which legitimately differs."""
    return {
        r["run_key"]: (
            json.dumps(r["spec"], sort_keys=True),
            json.dumps(r.get("report"), sort_keys=True),
            r["status"],
        )
        for r in records
    }


class TestShardedExecutionEquivalence:
    def test_two_shard_merge_identical_to_unsharded(self, tmp_path):
        spec = tiny_spec()
        reference = run_campaign(
            spec, store=CampaignStore(tmp_path / "reference.jsonl")
        )

        root = tmp_path / "root"
        for index in (1, 2):
            report = run_campaign(
                spec,
                store=CampaignStore(
                    shard_store_path(root, spec.campaign_key, index, 2)
                ),
                shard=(index, 2),
            )
            assert report.shard == (index, 2)
        shard_sizes = [len(spec.shard(i, 2)) for i in (1, 2)]
        assert sum(shard_sizes) == spec.run_count

        dest = campaign_dir(root, spec.campaign_key) / MERGED_STORE_NAME
        merge_stores(shard_paths(root, spec.campaign_key), dest)
        merged = CampaignStore(dest)

        assert not missing_runs(spec, merged)
        assert record_identity(merged) == record_identity(reference.records)
        # ...and the reduction over the merged store is float-identical.
        assert aggregate_sweep(
            records_in_spec_order(spec, merged), workload="scanning"
        ) == aggregate_sweep(reference.records, workload="scanning")

    def test_resume_after_merge_executes_nothing(self, tmp_path):
        spec = tiny_spec(seeds=(1,))
        root = tmp_path / "root"
        for index in (1, 2):
            run_campaign(
                spec,
                store=CampaignStore(
                    shard_store_path(root, spec.campaign_key, index, 2)
                ),
                shard=(index, 2),
            )
        dest = campaign_dir(root, spec.campaign_key) / MERGED_STORE_NAME
        merge_stores(shard_paths(root, spec.campaign_key), dest)
        resumed = run_campaign(spec, store=CampaignStore(dest))
        assert resumed.executed == 0
        assert resumed.cached == spec.run_count

    def test_shard_store_isolated_per_shard(self, tmp_path):
        spec = tiny_spec()
        root = tmp_path / "root"
        run_campaign(
            spec,
            store=CampaignStore(
                shard_store_path(root, spec.campaign_key, 1, 2)
            ),
            shard=(1, 2),
        )
        [only] = shard_paths(root, spec.campaign_key)
        assert only.name == "shard-01-of-02.jsonl"
        stored = CampaignStore(only)
        assert sorted(stored.keys()) == sorted(
            r.run_key for r in spec.shard(1, 2)
        )

    def test_records_in_spec_order_raises_on_gap(self, tmp_path):
        spec = tiny_spec()
        root = tmp_path / "root"
        run_campaign(
            spec,
            store=CampaignStore(
                shard_store_path(root, spec.campaign_key, 1, 2)
            ),
            shard=(1, 2),
        )
        dest = campaign_dir(root, spec.campaign_key) / MERGED_STORE_NAME
        merge_stores(shard_paths(root, spec.campaign_key), dest)
        with pytest.raises(KeyError, match="did every shard run"):
            records_in_spec_order(spec, CampaignStore(dest))


class TestBatchedExecution:
    def test_scenario_batched_parallel_equals_serial(self):
        """jobs=2 with scenario batching reproduces the serial records."""
        spec = CampaignSpec(
            workloads=["scanning"],
            grid=[(4, 2.2), (2, 0.8)],
            seeds=[1],
            scenarios=[{"family": "farm", "difficulty": 0.2, "seed": 7}],
            workload_kwargs={"scanning": dict(TINY_KWARGS)},
        )
        serial = run_campaign(spec, jobs=1)
        batched = run_campaign(spec, jobs=2, batch=True)
        unbatched = run_campaign(spec, jobs=2, batch=False)
        assert (
            record_identity(serial.records)
            == record_identity(batched.records)
            == record_identity(unbatched.records)
        )

    def test_batching_groups_by_scenario_hash(self):
        spec = CampaignSpec(
            workloads=["scanning"],
            grid=[(4, 2.2), (2, 0.8)],
            seeds=[1, 2],
            scenarios=[
                # Pinned seed: all four runs of this entry share a world.
                {"family": "farm", "difficulty": 0.2, "seed": 7},
                # Inherited seed: each mission seed flies its own world.
                {"family": "farm", "difficulty": 0.8},
            ],
            workload_kwargs={"scanning": dict(TINY_KWARGS)},
        )
        pending = spec.expand()
        batches = _batch_pending(pending, jobs=2, batch=True)
        assert sorted(r.run_key for b in batches for r in b) == sorted(
            r.run_key for r in pending
        )
        # The even-split cap for 8 runs over 2 jobs is 4: the pinned-seed
        # group batches to exactly that; the inherited-seed entry splits
        # into one world per mission seed, shared across grid points.
        assert sorted(len(b) for b in batches) == [2, 2, 4]

    def test_batch_cap_bounds_lost_work_per_chunk(self):
        """Results flush per pool task, so chunk size is capped: a killed
        campaign re-executes at most MAX_BATCH_RUNS missions per chunk."""
        from repro.campaign.runner import MAX_BATCH_RUNS

        spec = CampaignSpec(
            workloads=["scanning"],
            grid=[(4, 2.2), (2, 0.8)],
            seeds=list(range(1, 17)),
            scenarios=[{"family": "farm", "difficulty": 0.2, "seed": 7}],
        )
        pending = spec.expand()
        assert len(pending) == 32  # all sharing one pinned-seed world
        batches = _batch_pending(pending, jobs=2, batch=True)
        assert max(len(b) for b in batches) == MAX_BATCH_RUNS
        assert sorted(r.run_key for b in batches for r in b) == sorted(
            r.run_key for r in pending
        )

    def test_canonical_runs_stay_singletons(self):
        pending = tiny_spec().expand()
        assert _batch_pending(pending, jobs=2, batch=True) == [
            [r] for r in pending
        ]
        assert _batch_pending(pending, jobs=2, batch=False) == [
            [r] for r in pending
        ]
