"""Differential fleet-vs-sequential test harness.

The fleet runner's contract is *bit-identity*: a fleet of N missions
must produce exactly the reports, vehicle states, and RNG end-states
that N sequential runs produce.  This suite pins that contract three
ways:

* **End-to-end differentials** — fly the same mission set sequentially
  and as a fleet (N in {1, 2, 7}, mixed workloads) and compare final
  ``VehicleState`` bytes, QoF report dicts, and ``Generator`` bit
  states.
* **Scalar-twin kernels** — every ``*_batch``/``*_arrays`` kernel in
  :mod:`repro.fleet.kernels` against the original object code path it
  replaces (``Quadrotor.step``, ``RotorPowerModel.power``,
  ``AABB.distance_to``, ``geometry.norm``/``wrap_angle``) on
  hypothesis-generated states.
* **Batching invariants** — hypothesis properties that make the
  struct-of-arrays layout safe by construction: batch-size
  independence (rows compute the same alone or stacked), mask
  invariance (extra rows never perturb existing ones), and permutation
  invariance (row order is irrelevant).
"""

import copy
import threading
from dataclasses import asdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.path_tracking import PathTracker
from repro.core import fleet_hook
from repro.core.api import make_simulation, run_workload
from repro.core.workloads import WORKLOADS
from repro.dynamics.quadrotor import Quadrotor
from repro.dynamics.state import VehicleParams, VehicleState
from repro.energy.power_model import PowerModelCoefficients, RotorPowerModel
from repro.fleet import (
    FleetCoordinator,
    FleetMission,
    aabb_distances,
    batched_norms,
    quadrotor_step_arrays,
    rotor_power_arrays,
    run_workloads_fleet,
    sense_check_batch,
    sense_check_scalar,
    wrap_angles,
)
from repro.fleet.kernels import FleetBatchArrays
from repro.planning.smoothing import Trajectory, TrajectoryPoint
from repro.world import AABB, empty_world, make_box_obstacle
from repro.world.geometry import norm, wrap_angle

# ----------------------------------------------------------------------
# Mission sets for the end-to-end differentials
# ----------------------------------------------------------------------


def _photo(seed):
    return {
        "workload": "aerial_photography",
        "seed": seed,
        "cores": 2,
        "frequency_ghz": 0.8,
        "kwargs": lambda: {"max_duration_s": 30.0},
    }


def _scan(seed):
    return {
        "workload": "scanning",
        "seed": seed,
        "cores": 4,
        "frequency_ghz": 2.2,
        "kwargs": lambda: {"area_width": 40.0, "area_length": 24.0},
    }


def _mapping(seed):
    def kwargs():
        world = empty_world((30, 30, 10), name="fleet-arena")
        world.add(make_box_obstacle((5, 5, 2), (3, 3, 4), kind="crate"))
        return {"world": world, "coverage_target": 0.5, "mapping_ceiling": 8.0}

    return {
        "workload": "mapping",
        "seed": seed,
        "cores": 4,
        "frequency_ghz": 2.2,
        "kwargs": kwargs,
    }


def _delivery(seed):
    def kwargs():
        world = empty_world((50, 50, 12), name="fleet-city")
        world.add(make_box_obstacle((0, 0, 4), (6, 6, 8), kind="building"))
        return {"world": world, "goal": np.array([18.0, 18.0, 3.0])}

    return {
        "workload": "package_delivery",
        "seed": seed,
        "cores": 4,
        "frequency_ghz": 2.2,
        "kwargs": kwargs,
    }


MISSION_SETS = {
    1: [_photo(1)],
    2: [_photo(1), _photo(2)],
    # Mixed workloads, mixed operating points: the fleet must batch
    # heterogeneous missions without cross-talk.
    7: [
        _photo(1),
        _photo(2),
        _photo(3),
        _photo(4),
        _scan(1),
        _mapping(1),
        _delivery(1),
    ],
}


def _fly_one(mission):
    """Build-and-run one mission, keeping the sim for state inspection."""
    workload = WORKLOADS[mission["workload"]](
        seed=mission["seed"], **mission["kwargs"]()
    )
    sim = make_simulation(
        workload,
        cores=mission["cores"],
        frequency_ghz=mission["frequency_ghz"],
        seed=mission["seed"],
    )
    report = workload.run()
    return sim, report


def _fly_sequential(missions):
    return [_fly_one(m) for m in missions]


def _fly_fleet(missions):
    """Fly ``missions`` as one fleet, capturing each mission's sim.

    Mirrors :func:`repro.fleet.run_workloads_fleet` but keeps the
    ``Simulation`` objects so the test can compare end states the
    public API does not expose.
    """
    coordinator = FleetCoordinator(expected=len(missions))
    out = [None] * len(missions)
    errors = [None] * len(missions)

    def _fly(index, mission):
        fleet_hook.set_adopter(coordinator.enroll)
        try:
            out[index] = _fly_one(mission)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors[index] = exc
        finally:
            fleet_hook.set_adopter(None)
            coordinator.retire()

    threads = [
        threading.Thread(target=_fly, args=(i, m), name=f"test-fleet-{i}")
        for i, m in enumerate(missions)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for error in errors:
        if error is not None:
            raise error
    return out


def _state_bytes(state: VehicleState):
    return (
        state.position.tobytes(),
        state.velocity.tobytes(),
        state.acceleration.tobytes(),
        state.yaw,
        state.time,
    )


@pytest.mark.parametrize("n", sorted(MISSION_SETS))
def test_fleet_matches_sequential_bit_identical(n):
    """Fleet-of-N == N sequential runs: states, reports, RNG end-state."""
    missions = MISSION_SETS[n]
    sequential = _fly_sequential(missions)
    fleet = _fly_fleet(missions)
    for mission, (seq_sim, seq_report), (fl_sim, fl_report) in zip(
        missions, sequential, fleet
    ):
        label = f"{mission['workload']} seed={mission['seed']}"
        assert asdict(fl_report) == asdict(seq_report), label
        assert _state_bytes(fl_sim.state) == _state_bytes(seq_sim.state), label
        assert (
            fl_sim.rng.bit_generator.state == seq_sim.rng.bit_generator.state
        ), label
        assert fl_sim.collisions == seq_sim.collisions, label
        assert fl_sim.clock.now == seq_sim.clock.now, label


def test_run_workloads_fleet_matches_run_workload():
    """The public fleet API returns run_workload's results verbatim."""
    missions = [
        FleetMission(
            workload="aerial_photography",
            seed=seed,
            cores=2,
            frequency_ghz=0.8,
            workload_kwargs={"max_duration_s": 30.0},
        )
        for seed in (1, 2)
    ]
    results, errors = run_workloads_fleet(missions)
    assert errors == [None, None]
    for mission, result in zip(missions, results):
        reference = run_workload(
            mission.workload,
            cores=mission.cores,
            frequency_ghz=mission.frequency_ghz,
            seed=mission.seed,
            workload_kwargs=mission.workload_kwargs,
        )
        assert asdict(result.report) == asdict(reference.report)
        assert result.kernel_stats == reference.kernel_stats


def test_fleet_traces_with_per_mission_attribution():
    """Fleets run under an installed tracer (PR 9): results stay
    byte-identical to untraced execution, every mission's spans land on
    its own labeled stream, and the gate emits its fleet.gate subtree
    plus per-member wait/wake histograms."""
    from repro.fleet import fleet_gate_stats
    from repro.observability import trace as _trace

    missions = [
        FleetMission(
            workload="aerial_photography",
            seed=seed,
            workload_kwargs={"max_duration_s": 30.0},
        )
        for seed in (1, 2)
    ]
    reference, _ = run_workloads_fleet(missions)
    with _trace.capture() as tracer:
        results, errors = run_workloads_fleet(missions)
    assert errors == [None, None]
    for ref, result in zip(reference, results):
        assert asdict(result.report) == asdict(ref.report)

    labels = {sp.mission for sp in tracer.spans}
    assert "m0:aerial_photography" in labels
    assert "m1:aerial_photography" in labels
    assert "fleet.gate" in labels
    # Each mission stream nests exactly like a sequential trace.
    for label in ("m0:aerial_photography", "m1:aerial_photography"):
        paths = {
            "/".join(sp.path) for sp in tracer.spans if sp.mission == label
        }
        assert "mission" in paths
        assert "mission/fly" in paths
        assert "mission/fly/tick.compute" in paths
    gate_paths = {
        "/".join(sp.path)
        for sp in tracer.spans
        if sp.mission == "fleet.gate"
    }
    assert {
        "fleet.gate",
        "fleet.gate/control",
        "fleet.gate/dynamics",
        "fleet.gate/compute",
        "fleet.gate/sense",
        "fleet.gate/energy",
    } <= gate_paths
    assert tracer.open_depth == 0

    gate = fleet_gate_stats(tracer.metrics.snapshot())
    assert gate["ticks"] > 0
    assert gate["retired"] == 2
    assert set(gate["wait"]) == {
        "m0:aerial_photography", "m1:aerial_photography"
    }
    for hist in gate["wait"].values():
        assert hist["count"] > 0


def test_fleet_tracing_disabled_records_no_gate_metrics():
    """Without a tracer the gate's instrumentation must stay fully
    dormant (no spans anywhere to record into, no histograms)."""
    from repro.observability import trace as _trace

    assert _trace.get_tracer() is None
    results, errors = run_workloads_fleet(
        [
            FleetMission(
                workload="aerial_photography",
                seed=1,
                workload_kwargs={"max_duration_s": 10.0},
            ),
            FleetMission(
                workload="aerial_photography",
                seed=2,
                workload_kwargs={"max_duration_s": 10.0},
            ),
        ]
    )
    assert errors == [None, None]
    assert all(r is not None for r in results)
    assert _trace.get_tracer() is None


# ----------------------------------------------------------------------
# Scalar-twin differentials (hypothesis-generated states)
# ----------------------------------------------------------------------

finite = st.floats(
    min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False
)
vec3 = st.tuples(finite, finite, finite).map(lambda t: np.array(t, dtype=float))


@given(v=vec3)
@settings(deadline=None)
def test_batched_norms_matches_geometry_norm(v):
    assert batched_norms(v[None, :])[0] == norm(v)
    assert batched_norms(v[None, :])[0] == float(np.linalg.norm(v))


@given(theta=st.floats(-50.0, 50.0, allow_nan=False))
@settings(deadline=None)
def test_wrap_angles_matches_wrap_angle(theta):
    assert wrap_angles(np.array([theta]))[0] == wrap_angle(theta)


@given(point=vec3, center=vec3, size=st.tuples(
    st.floats(0.1, 10.0), st.floats(0.1, 10.0), st.floats(0.1, 10.0)))
@settings(deadline=None)
def test_aabb_distances_matches_distance_to(point, center, size):
    box = AABB.from_center(center, np.array(size))
    batched = aabb_distances(
        point[None, :], box.lo[None, :], box.hi[None, :]
    )[0]
    assert batched == box.distance_to(point)


@given(
    velocity=vec3,
    acceleration=vec3,
    wind=st.tuples(st.floats(-5.0, 5.0), st.floats(-5.0, 5.0)),
    mass=st.floats(0.5, 10.0),
)
@settings(deadline=None)
def test_rotor_power_arrays_matches_power_model(
    velocity, acceleration, wind, mass
):
    model = RotorPowerModel(coefficients=PowerModelCoefficients(), mass_kg=mass)
    wind_xy = np.array(wind)
    batched = rotor_power_arrays(
        velocity=velocity[None, :],
        acceleration=acceleration[None, :],
        wind_xy=wind_xy[None, :],
        beta=np.asarray(model.coefficients.beta, dtype=float)[None, :],
        mass=np.array([mass]),
    )[0]
    assert batched == model.power(velocity, acceleration, wind_xy)


@st.composite
def quad_inputs(draw):
    position = draw(vec3)
    velocity = draw(vec3)
    yaw = draw(st.floats(-np.pi, np.pi, allow_nan=False))
    vel_cmd = draw(vec3)
    yaw_cmd = draw(st.one_of(st.none(), st.floats(-np.pi, np.pi)))
    wind = draw(vec3)
    return position, velocity, yaw, vel_cmd, yaw_cmd, wind


@given(inputs=quad_inputs(), dt=st.floats(0.01, 0.2))
@settings(deadline=None)
def test_quadrotor_step_arrays_matches_quadrotor_step(inputs, dt):
    position, velocity, yaw, vel_cmd, yaw_cmd, wind = inputs
    quad = Quadrotor(
        state=VehicleState(position=position, velocity=velocity, yaw=yaw),
        params=VehicleParams(),
    )
    # Bypass command_velocity's clamping — the kernel batches the step,
    # not the command setter, so feed both paths the same raw command.
    quad._velocity_command = vel_cmd.copy()
    quad._yaw_command = yaw_cmd
    # VehicleState canonicalizes on construction (yaw wrapping); the
    # kernel's inputs are the *stored* state, as in the real fleet.
    position, velocity, yaw = (
        quad.state.position.copy(),
        quad.state.velocity.copy(),
        quad.state.yaw,
    )
    reference = quad.step(dt, wind=wind)

    new_p, new_v, new_yaw = quadrotor_step_arrays(
        position=position[None, :],
        velocity=velocity[None, :],
        yaw=np.array([yaw]),
        vel_cmd=vel_cmd[None, :],
        yaw_cmd=np.array([np.nan if yaw_cmd is None else yaw_cmd]),
        wind=wind[None, :],
        dt=np.array([dt]),
        gain=np.array([quad.velocity_gain]),
        drag=np.array([quad.params.drag_coefficient]),
        a_max=np.array([quad.params.max_acceleration_ms2]),
        v_max=np.array([quad.params.max_speed_ms]),
        vz_max=np.array([quad.params.max_vertical_speed_ms]),
        yaw_rate_max=np.array([quad.params.max_yaw_rate_rads]),
    )
    assert new_p[0].tobytes() == reference.position.tobytes()
    assert new_v[0].tobytes() == reference.velocity.tobytes()
    assert float(new_yaw[0]) == reference.yaw


# ----------------------------------------------------------------------
# Batching invariants
# ----------------------------------------------------------------------

rows = st.integers(min_value=1, max_value=9)


def _random_quad_batch(rng, n):
    return dict(
        position=rng.normal(size=(n, 3)) * 5.0,
        velocity=rng.normal(size=(n, 3)) * 3.0,
        yaw=rng.uniform(-np.pi, np.pi, size=n),
        vel_cmd=rng.normal(size=(n, 3)) * 4.0,
        yaw_cmd=np.where(
            rng.random(n) < 0.5, rng.uniform(-np.pi, np.pi, size=n), np.nan
        ),
        wind=rng.normal(size=(n, 3)),
        dt=rng.uniform(0.02, 0.1, size=n),
        gain=rng.uniform(1.0, 4.0, size=n),
        drag=rng.uniform(0.0, 0.3, size=n),
        a_max=rng.uniform(2.0, 8.0, size=n),
        v_max=rng.uniform(5.0, 20.0, size=n),
        vz_max=rng.uniform(1.0, 6.0, size=n),
        yaw_rate_max=rng.uniform(0.5, 3.0, size=n),
    )


def _take(batch, index):
    return {k: v[index] for k, v in batch.items()}


@given(seed=st.integers(0, 2**31 - 1), n=rows)
@settings(deadline=None, max_examples=50)
def test_quadrotor_batch_size_independence(seed, n):
    """Row i of a batch of N equals the same row run as a batch of 1."""
    batch = _random_quad_batch(np.random.default_rng(seed), n)
    full = quadrotor_step_arrays(**batch)
    for i in range(n):
        single = quadrotor_step_arrays(
            **{k: v[i : i + 1] for k, v in batch.items()}
        )
        for got, want in zip(single, full):
            assert got[0].tobytes() == want[i].tobytes()


@given(seed=st.integers(0, 2**31 - 1), n=rows, extra=rows)
@settings(deadline=None, max_examples=50)
def test_quadrotor_mask_invariance(seed, n, extra):
    """Appending rows (then discarding them) never perturbs the originals.

    This is the property that lets the fleet compute grounded/retired
    rows and throw them away instead of branching per mission.
    """
    rng = np.random.default_rng(seed)
    batch = _random_quad_batch(rng, n)
    padded = _random_quad_batch(rng, n + extra)
    for key, value in batch.items():
        padded[key][:n] = value
    base = quadrotor_step_arrays(**batch)
    masked = quadrotor_step_arrays(**padded)
    for got, want in zip(masked, base):
        assert got[:n].tobytes() == want.tobytes()


@given(seed=st.integers(0, 2**31 - 1), n=rows)
@settings(deadline=None, max_examples=50)
def test_quadrotor_permutation_invariance(seed, n):
    rng = np.random.default_rng(seed)
    batch = _random_quad_batch(rng, n)
    perm = rng.permutation(n)
    base = quadrotor_step_arrays(**batch)
    permuted = quadrotor_step_arrays(
        **{k: v[perm] for k, v in batch.items()}
    )
    for got, want in zip(permuted, base):
        assert got.tobytes() == want[perm].tobytes()


@given(seed=st.integers(0, 2**31 - 1), n=rows)
@settings(deadline=None, max_examples=50)
def test_rotor_power_batch_properties(seed, n):
    rng = np.random.default_rng(seed)
    kwargs = dict(
        velocity=rng.normal(size=(n, 3)) * 4.0,
        acceleration=rng.normal(size=(n, 3)) * 2.0,
        wind_xy=rng.normal(size=(n, 2)),
        beta=rng.uniform(0.5, 10.0, size=(n, 9)),
        mass=rng.uniform(0.5, 5.0, size=n),
    )
    full = rotor_power_arrays(**kwargs)
    perm = rng.permutation(n)
    assert (
        rotor_power_arrays(**{k: v[perm] for k, v in kwargs.items()}).tobytes()
        == full[perm].tobytes()
    )
    for i in range(n):
        single = rotor_power_arrays(
            **{k: v[i : i + 1] for k, v in kwargs.items()}
        )
        assert single[0] == full[i]


# ----------------------------------------------------------------------
# FleetBatchArrays geometry cache + batched sense vs scalar twin
# ----------------------------------------------------------------------


def _sense_sims():
    """Two static-world sims (the pre-flattened geometry fast path only
    engages for worlds without dynamic obstacles)."""
    sims = []
    for seed in (1, 2):
        mission = _mapping(seed)
        workload = WORKLOADS[mission["workload"]](
            seed=seed, **mission["kwargs"]()
        )
        sim = make_simulation(workload, cores=2, frequency_ghz=0.8, seed=seed)
        sims.append(sim)
    return sims


def test_batch_arrays_sense_cache_invalidates_on_world_add():
    """World.add must flip the pre-flattened geometry to stale."""
    sims = _sense_sims()
    cache = FleetBatchArrays(sims, [s.config.dt for s in sims])
    assert cache.sense_fresh(sims)
    sims[0].world.add(make_box_obstacle((9, 9, 1), (1, 1, 2), kind="late"))
    assert not cache.sense_fresh(sims)
    # The stale cache must still sense correctly via the generic path:
    # park a vehicle inside the late obstacle and expect the collision.
    sims[0].vehicle.state.position = np.array([9.0, 9.0, 1.0])
    sense_check_batch(sims, cache)
    assert sims[0].collisions == 1
    assert sims[1].collisions == 0


def test_sense_check_batch_matches_scalar():
    """Batched fleet sensing == per-sim _check_collision, fresh or stale."""
    for stale in (False, True):
        batch_sims = _sense_sims()
        scalar_sims = _sense_sims()
        cache = FleetBatchArrays(batch_sims, [s.config.dt for s in batch_sims])
        for sims in (batch_sims, scalar_sims):
            if stale:
                # Added *after* the cache was built: the pre-flattened
                # geometry no longer mirrors the world.
                sims[0].world.add(
                    make_box_obstacle((6, 6, 1), (2, 2, 2), kind="late")
                )
            # One airborne mission brushing an obstacle, one grounded
            # inside it (the 0.3 m altitude gate must ignore it).
            sims[0].vehicle.state.position = np.array([6.0, 6.0, 1.5])
            sims[1].vehicle.state.position = np.array([6.0, 6.0, 0.1])
        assert cache.sense_fresh(batch_sims) != stale
        sense_check_batch(batch_sims, cache)
        for sim in scalar_sims:
            sense_check_scalar(sim)
        for got, want in zip(batch_sims, scalar_sims):
            assert got.collisions == want.collisions, f"stale={stale}"
            assert got._failure_reason == want._failure_reason, f"stale={stale}"


# ----------------------------------------------------------------------
# PathTracker replay cache
# ----------------------------------------------------------------------


def _tracker_with_trajectory():
    points = [
        TrajectoryPoint(
            time=float(t),
            position=np.array([t * 2.0, t * 0.5, 3.0]),
            velocity=np.array([2.0, 0.5, 0.0]),
        )
        for t in range(5)
    ]
    tracker = PathTracker()
    tracker.set_trajectory(Trajectory(points=points), now=0.0)
    return tracker


def test_path_tracker_replay_matches_full_recompute():
    """The dt=0 replay cache returns exactly what a recompute would,
    including the duplicate error sample the metrics rely on."""
    tracker = _tracker_with_trajectory()
    position = np.array([0.3, 0.1, 3.0])
    first = tracker.update(position, now=0.5)

    control = copy.deepcopy(tracker)
    control._replay = None  # force the full code path
    recomputed = control.update(position, now=0.5)
    replayed = tracker.update(position, now=0.5)

    assert replayed is first  # served from the cache, not rebuilt
    assert replayed.velocity_command.tobytes() == recomputed.velocity_command.tobytes()
    assert replayed.cross_track_error == recomputed.cross_track_error
    assert replayed.progress == recomputed.progress
    assert replayed.finished == recomputed.finished
    assert tracker._errors == control._errors
    assert tracker.mean_error() == control.mean_error()
    assert tracker.max_error() == control.max_error()


def test_path_tracker_replay_misses_on_any_drift():
    """Moving time or position (or retargeting) must bypass the cache."""
    tracker = _tracker_with_trajectory()
    position = np.array([0.3, 0.1, 3.0])
    first = tracker.update(position, now=0.5)
    moved = tracker.update(position + 0.01, now=0.5)
    assert moved is not first
    later = tracker.update(position, now=0.6)
    assert later is not moved
    tracker.set_trajectory(tracker.trajectory, now=0.6)
    assert tracker._replay is None
