"""Tests for the sensor substrate: cameras, IMU, GPS, noise models."""

import math

import numpy as np
import pytest

from repro.dynamics.state import VehicleState
from repro.sensors import (
    BiasedNoise,
    CameraIntrinsics,
    DepthNoise,
    GaussianNoise,
    Gps,
    Imu,
    RgbdCamera,
)
from repro.world import empty_world, make_box_obstacle, make_person, vec


class TestNoiseModels:
    def test_zero_std_is_identity(self):
        noise = GaussianNoise(std=0.0)
        x = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(noise.apply(x), x)

    def test_apply_does_not_mutate_input(self):
        noise = GaussianNoise(std=1.0, seed=0)
        x = np.array([1.0, 2.0])
        noise.apply(x)
        assert np.array_equal(x, [1.0, 2.0])

    def test_seeded_reproducibility(self):
        a = GaussianNoise(std=0.5, seed=3).apply(np.zeros(100))
        b = GaussianNoise(std=0.5, seed=3).apply(np.zeros(100))
        assert np.array_equal(a, b)

    def test_std_controls_spread(self):
        small = GaussianNoise(std=0.1, seed=1).apply(np.zeros(2000)).std()
        large = GaussianNoise(std=1.5, seed=1).apply(np.zeros(2000)).std()
        assert small == pytest.approx(0.1, rel=0.15)
        assert large == pytest.approx(1.5, rel=0.15)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise(std=-1.0)

    def test_depth_noise_clips_physical_range(self):
        noise = DepthNoise(std=5.0, seed=2)
        depth = np.full((10, 10), 1.0)
        noisy = noise.apply_depth(depth, max_range=20.0)
        assert np.all(noisy >= 0.0)
        assert np.all(noisy <= 20.0)

    def test_depth_noise_preserves_no_returns(self):
        noise = DepthNoise(std=2.0, seed=2)
        depth = np.full((5, 5), 20.0)  # all at max range
        noisy = noise.apply_depth(depth, max_range=20.0)
        assert np.array_equal(noisy, depth)

    def test_biased_noise(self):
        noise = BiasedNoise(std=0.0, bias=0.5)
        assert np.allclose(noise.apply(np.zeros(3)), 0.5)


class TestCameraIntrinsics:
    def test_focal_length(self):
        intr = CameraIntrinsics(width=64, height=48, horizontal_fov_deg=90.0)
        assert intr.focal_px == pytest.approx(32.0)

    def test_vertical_fov_smaller_than_horizontal(self):
        intr = CameraIntrinsics(width=64, height=48)
        assert intr.vertical_fov_deg < intr.horizontal_fov_deg

    def test_validation(self):
        with pytest.raises(ValueError):
            CameraIntrinsics(width=0)
        with pytest.raises(ValueError):
            CameraIntrinsics(horizontal_fov_deg=200)
        with pytest.raises(ValueError):
            CameraIntrinsics(max_range_m=0)


class TestDepthCapture:
    def _world_with_wall(self, distance=5.0):
        world = empty_world((40, 40, 20))
        world.add(
            make_box_obstacle((distance + 0.5, 0, 5), (1, 20, 10), kind="wall")
        )
        return world

    def test_wall_appears_at_correct_depth(self):
        world = self._world_with_wall(5.0)
        cam = RgbdCamera(intrinsics=CameraIntrinsics(width=16, height=12))
        img = cam.capture_depth(world, vec(0, 0, 5), yaw=0.0)
        center = img.depth[6, 8]
        assert center == pytest.approx(5.0, abs=0.05)

    def test_empty_view_is_max_range(self):
        world = self._world_with_wall(5.0)
        cam = RgbdCamera(intrinsics=CameraIntrinsics(width=16, height=12))
        img = cam.capture_depth(world, vec(0, 0, 5), yaw=math.pi)  # look away
        assert np.all(img.depth >= cam.intrinsics.max_range_m - 1e-6)
        assert not img.valid_mask.any()

    def test_depth_noise_applied(self):
        world = self._world_with_wall(5.0)
        cam = RgbdCamera(
            intrinsics=CameraIntrinsics(width=16, height=12),
            depth_noise=DepthNoise(std=0.5, seed=1),
        )
        img = cam.capture_depth(world, vec(0, 0, 5), yaw=0.0)
        wall_pixels = img.depth[img.depth < 19.0]
        assert wall_pixels.std() > 0.1

    def test_min_depth_reports_nearest(self):
        world = self._world_with_wall(5.0)
        cam = RgbdCamera(intrinsics=CameraIntrinsics(width=16, height=12))
        img = cam.capture_depth(world, vec(0, 0, 5), yaw=0.0)
        assert img.min_depth() == pytest.approx(5.0, abs=0.1)

    def test_gimbal_pitch_sees_ground_objects(self):
        world = empty_world((40, 40, 20))
        world.add(make_box_obstacle((8, 0, 0.5), (1, 1, 1), kind="crate"))
        level = RgbdCamera(intrinsics=CameraIntrinsics(width=32, height=24))
        pitched = RgbdCamera(
            intrinsics=CameraIntrinsics(width=32, height=24),
            pitch_rad=0.5,  # positive pitch tilts the optical axis down
        )
        img_level = level.capture_depth(world, vec(0, 0, 10), yaw=0.0)
        img_down = pitched.capture_depth(world, vec(0, 0, 10), yaw=0.0)
        assert img_down.min_depth() < img_level.min_depth()


class TestProjectionAndVisibility:
    def test_project_centered_object(self):
        cam = RgbdCamera(intrinsics=CameraIntrinsics(width=64, height=48))
        proj = cam.project(vec(10, 0, 5), vec(0, 0, 5), yaw=0.0)
        assert proj is not None
        u, v, depth = proj
        assert u == pytest.approx(32.0)
        assert v == pytest.approx(24.0)
        assert depth == pytest.approx(10.0)

    def test_project_behind_camera(self):
        cam = RgbdCamera()
        assert cam.project(vec(-10, 0, 5), vec(0, 0, 5), yaw=0.0) is None

    def test_project_outside_fov(self):
        cam = RgbdCamera()
        assert cam.project(vec(1, 50, 5), vec(0, 0, 5), yaw=0.0) is None

    def test_project_respects_yaw(self):
        cam = RgbdCamera()
        # Object due +y; camera yawed to face +y.
        proj = cam.project(vec(0, 10, 5), vec(0, 0, 5), yaw=math.pi / 2)
        assert proj is not None

    def test_visible_objects_filters_kind(self):
        world = empty_world((60, 60, 20))
        world.add(make_person((10, 0, 0.9), name="alice"))
        world.add(make_box_obstacle((12, 3, 1), (1, 1, 2), kind="crate"))
        cam = RgbdCamera(intrinsics=CameraIntrinsics(max_range_m=30))
        dets = cam.visible_objects(world, vec(0, 0, 1), yaw=0.0, kinds=["person"])
        assert len(dets) == 1
        assert dets[0].obstacle.name == "alice"
        assert not dets[0].occluded

    def test_occlusion_detected(self):
        world = empty_world((60, 60, 20))
        world.add(make_person((15, 0, 0.9), name="bob"))
        world.add(make_box_obstacle((8, 0, 2), (1, 6, 4), kind="wall"))
        cam = RgbdCamera(intrinsics=CameraIntrinsics(max_range_m=30))
        dets = cam.visible_objects(world, vec(0, 0, 1), yaw=0.0, kinds=["person"])
        assert len(dets) == 1
        assert dets[0].occluded

    def test_apparent_size_shrinks_with_distance(self):
        world = empty_world((100, 100, 20))
        world.add(make_person((10, 0, 0.9), name="near"))
        world.add(make_person((25, 2, 0.9), name="far"))
        cam = RgbdCamera(intrinsics=CameraIntrinsics(max_range_m=50))
        dets = {
            d.obstacle.name: d
            for d in cam.visible_objects(
                world, vec(0, 0, 1), yaw=0.0, kinds=["person"]
            )
        }
        assert dets["near"].extent_px[1] > dets["far"].extent_px[1]


class TestImuGps:
    def test_imu_reads_acceleration(self):
        imu = Imu()
        state = VehicleState(acceleration=vec(1, 0, 0), time=0.1)
        reading = imu.read(state)
        assert reading.acceleration[0] == pytest.approx(1.0, abs=0.3)

    def test_imu_yaw_rate_estimate(self):
        imu = Imu(yaw_noise=GaussianNoise(std=0.0))
        imu.read(VehicleState(yaw=0.0, time=0.0))
        reading = imu.read(VehicleState(yaw=0.1, time=1.0))
        assert reading.yaw_rate == pytest.approx(0.1, abs=0.02)

    def test_gps_noise(self):
        gps = Gps(noise=GaussianNoise(std=1.0, seed=1))
        state = VehicleState(position=vec(100, 50, 10))
        fixes = np.array([gps.read(state).position for _ in range(200)])
        assert np.linalg.norm(fixes.mean(axis=0) - state.position) < 0.5

    def test_gps_degradation_drops_fixes(self):
        gps = Gps(availability=0.0)
        fix = gps.read(VehicleState(position=vec(1, 2, 3)))
        assert not fix.valid
        assert np.all(np.isnan(fix.position))

    def test_gps_degrade_method(self):
        gps = Gps()
        gps.degrade(availability=0.5, noise_std=5.0)
        assert gps.availability == 0.5
        assert gps.noise.std == 5.0

    def test_gps_availability_validation(self):
        with pytest.raises(ValueError):
            Gps(availability=1.5)
