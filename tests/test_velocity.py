"""Tests for the Eq.-2 velocity law (core/velocity)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.velocity import (
    PAPER_A_MAX,
    PAPER_STOP_DISTANCE,
    max_velocity,
    max_velocity_curve,
    response_time_for_velocity,
)


class TestMaxVelocity:
    def test_paper_endpoints(self):
        """Fig. 8a: v in [1.57, 8.83] m/s for dt in [0, 4] s."""
        assert max_velocity(0.0) == pytest.approx(8.83, abs=0.05)
        assert max_velocity(4.0) == pytest.approx(1.57, abs=0.05)

    def test_monotone_decreasing_in_process_time(self):
        values = [max_velocity(t) for t in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert values == sorted(values, reverse=True)

    def test_instant_pipeline_limit(self):
        """At dt=0 the bound is sqrt(2 a d)."""
        v = max_velocity(0.0, stop_distance_m=10.0, a_max=5.0)
        assert v == pytest.approx(math.sqrt(2 * 5.0 * 10.0))

    def test_longer_stop_distance_allows_more_speed(self):
        assert max_velocity(1.0, stop_distance_m=10.0) > max_velocity(
            1.0, stop_distance_m=5.0
        )

    def test_stronger_brakes_allow_more_speed(self):
        assert max_velocity(1.0, a_max=8.0) > max_velocity(1.0, a_max=3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_velocity(-1.0)
        with pytest.raises(ValueError):
            max_velocity(1.0, stop_distance_m=0.0)
        with pytest.raises(ValueError):
            max_velocity(1.0, a_max=-1.0)

    def test_curve_helper(self):
        curve = max_velocity_curve([0.0, 1.0, 2.0])
        assert len(curve) == 3
        assert curve[0][1] > curve[-1][1]

    @given(
        dt=st.floats(0.0, 10.0),
        d=st.floats(0.5, 50.0),
        a=st.floats(0.5, 20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_physical_consistency(self, dt, d, a):
        """At v_max, reaction distance + braking distance equals d."""
        v = max_velocity(dt, stop_distance_m=d, a_max=a)
        assert v > 0
        total = v * dt + v * v / (2.0 * a)
        assert total == pytest.approx(d, rel=1e-6)


class TestInverse:
    def test_round_trip(self):
        for dt in (0.0, 0.3, 1.0, 2.5, 4.0):
            v = max_velocity(dt)
            assert response_time_for_velocity(v) == pytest.approx(dt, abs=1e-9)

    def test_unreachable_velocity_clamps_to_zero(self):
        v_limit = max_velocity(0.0)
        assert response_time_for_velocity(v_limit * 1.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            response_time_for_velocity(0.0)

    @given(v=st.floats(0.1, 8.0))
    @settings(max_examples=40, deadline=None)
    def test_inverse_monotone(self, v):
        """Slower target velocity tolerates a longer pipeline."""
        dt_slow = response_time_for_velocity(v)
        dt_slower = response_time_for_velocity(max(v - 0.05, 0.05))
        assert dt_slower >= dt_slow - 1e-9

    def test_paper_constants_recovered(self):
        """The module's defaults match Fig. 8a's implied parameters."""
        assert PAPER_A_MAX == pytest.approx(6.0)
        assert PAPER_STOP_DISTANCE == pytest.approx(6.5)
