"""Smoke tests: the fast example scripts must stay runnable.

Only the examples that finish in a few seconds are exercised here; the
mission-heavy ones are covered indirectly by the benchmark harness.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExampleSmoke:
    def test_examples_directory_complete(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        assert "quickstart.py" in scripts
        assert len(scripts) >= 7

    def test_flight_log_export(self, tmp_path):
        result = _run("flight_log_export.py", str(tmp_path))
        assert result.returncode == 0, result.stderr
        assert "wrote mission document" in result.stdout
        assert (tmp_path / "scanning_trace.csv").exists()

    def test_dataflow_contention(self):
        result = _run("dataflow_contention.py")
        assert result.returncode == 0, result.stderr
        assert "frames dropped" in result.stdout

    @pytest.mark.slow
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "mission outcome" in result.stdout
        assert "octomap" in result.stdout
