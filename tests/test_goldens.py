"""End-to-end golden-trace regression tests: one short canonical mission
per workload, pinned to a stored metrics digest.

Each test flies a small, fast (< ~3 s) but *complete* closed-loop
mission — world, perception, planning, control, energy — and compares
the headline outcome metrics (mission time, energy, success, replans,
flight distance, average velocity) against a digest checked into
``tests/goldens/<workload>.json``.  A refactor that silently changes
mission *outcomes* (not just internals) fails here in the fast lane,
naming the drifted metric.

Updating goldens
----------------
When an outcome change is intentional (a planner fix, a physics
correction), regenerate the digests and commit them alongside the
change::

    python -m pytest tests/test_goldens.py --update-goldens

The diff of ``tests/goldens/*.json`` then documents exactly how every
workload's canonical mission moved — review it like code.

Float comparisons use a tight relative tolerance (1e-9): behavioral
drift moves these metrics by whole percents, while last-ulp libm
differences across platforms stay far below it.  ``success`` and
``replans`` compare exactly.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.api import run_workload
from repro.world import empty_world, make_box_obstacle, make_person

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Relative tolerance for float metrics (see module docstring).
RTOL = 1e-9


def _search_rescue_world():
    world = empty_world((30, 30, 10), name="golden-site")
    world.add(make_box_obstacle((0, 8, 2), (4, 2, 4), kind="debris"))
    world.add(make_person((8.0, 8.0, 0.9), name="survivor-0"))
    return world


def _delivery_world():
    world = empty_world((50, 50, 12), name="golden-city")
    world.add(make_box_obstacle((0, 0, 4), (6, 6, 8), kind="building"))
    return world


def _mapping_world():
    world = empty_world((30, 30, 10), name="golden-arena")
    world.add(make_box_obstacle((5, 5, 2), (3, 3, 4), kind="crate"))
    return world


#: The canonical short mission per workload: (workload_kwargs_factory, seed).
#: Worlds are built per call so no test can mutate another's.
GOLDEN_MISSIONS = {
    "scanning": (
        lambda: {"area_width": 40.0, "area_length": 24.0}, 1),
    "mapping": (
        lambda: {"world": _mapping_world(), "coverage_target": 0.5,
                 "mapping_ceiling": 8.0}, 1),
    "package_delivery": (
        lambda: {"world": _delivery_world(),
                 "goal": np.array([18.0, 18.0, 3.0])}, 1),
    "search_rescue": (
        lambda: {"world": _search_rescue_world(), "coverage_target": 0.9,
                 "mapping_ceiling": 8.0, "n_survivors": 1}, 1),
    "aerial_photography": (
        lambda: {"max_duration_s": 30.0}, 1),
}


def report_digest(workload: str, seed: int, report) -> dict:
    """Reduce one mission's QoF report to the stored digest shape
    (shared with the fleet golden suite, tests/test_fleet_goldens.py)."""
    return {
        "workload": workload,
        "seed": seed,
        "success": report.success,
        "mission_time_s": report.mission_time_s,
        "total_energy_j": report.total_energy_j,
        "flight_distance_m": report.flight_distance_m,
        "average_velocity_ms": report.average_velocity_ms,
        "replans": report.extra.get("replans", 0.0),
    }


def fly_golden_mission(workload: str):
    """Run the canonical short mission and reduce it to the digest shape."""
    kwargs_factory, seed = GOLDEN_MISSIONS[workload]
    result = run_workload(
        workload, cores=4, frequency_ghz=2.2, seed=seed,
        workload_kwargs=kwargs_factory(),
    )
    return report_digest(workload, seed, result.report)


def _golden_path(workload: str) -> Path:
    return GOLDEN_DIR / f"{workload}.json"


def load_golden(workload: str) -> dict:
    """The stored digest for ``workload`` (asserts it exists)."""
    path = _golden_path(workload)
    assert path.exists(), (
        f"no golden digest for '{workload}' — generate one with "
        f"'python -m pytest {__file__} --update-goldens' and commit it"
    )
    return json.loads(path.read_text())


def assert_digest_matches(workload: str, digest: dict, golden: dict,
                          context: str = "golden") -> None:
    """Exact comparison on identity/outcome keys, RTOL on float metrics."""
    exact_keys = ("workload", "seed", "success", "replans")
    for key in exact_keys:
        assert digest[key] == golden[key], (
            f"{workload}: '{key}' drifted from {context} "
            f"({golden[key]!r} -> {digest[key]!r})"
        )
    for key in sorted(set(golden) - set(exact_keys)):
        assert digest[key] == pytest.approx(golden[key], rel=RTOL), (
            f"{workload}: '{key}' drifted from {context} "
            f"({golden[key]!r} -> {digest[key]!r}); if intentional, "
            f"re-run with --update-goldens and commit the diff"
        )


@pytest.mark.golden
@pytest.mark.parametrize("workload", sorted(GOLDEN_MISSIONS))
def test_golden_trace(workload, update_goldens):
    digest = fly_golden_mission(workload)
    path = _golden_path(workload)

    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(digest, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden updated: {path}")

    golden = load_golden(workload)
    assert_digest_matches(workload, digest, golden)


@pytest.mark.golden
def test_goldens_cover_every_workload():
    """A new workload must ship with a golden canonical mission."""
    from repro.core.api import available_workloads

    assert sorted(GOLDEN_MISSIONS) == available_workloads()


@pytest.mark.golden
def test_golden_mission_is_deterministic():
    """The digest itself is reproducible — a flaky golden pins nothing."""
    a = fly_golden_mission("scanning")
    b = fly_golden_mission("scanning")
    assert a == b
