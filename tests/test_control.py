"""Tests for the control kernels: PID and path tracking."""

import numpy as np
import pytest

from repro.control import PathTracker, Pid, VectorPid
from repro.planning.smoothing import time_parameterize
from repro.world.geometry import vec


class TestPid:
    def test_proportional_only(self):
        pid = Pid(kp=2.0)
        assert pid.update(1.0, dt=0.1) == pytest.approx(2.0)

    def test_integral_accumulates(self):
        pid = Pid(kp=0.0, ki=1.0)
        pid.update(1.0, dt=0.5)
        out = pid.update(1.0, dt=0.5)
        assert out == pytest.approx(1.0)

    def test_derivative_term(self):
        pid = Pid(kp=0.0, kd=1.0)
        pid.update(0.0, dt=0.1)
        out = pid.update(1.0, dt=0.1)
        assert out == pytest.approx(10.0)

    def test_output_limit(self):
        pid = Pid(kp=100.0, output_limit=5.0)
        assert pid.update(10.0, dt=0.1) == 5.0
        assert pid.update(-10.0, dt=0.1) == -5.0

    def test_integral_anti_windup(self):
        pid = Pid(kp=0.0, ki=1.0, integral_limit=2.0)
        for _ in range(100):
            pid.update(10.0, dt=1.0)
        assert pid.update(0.0, dt=1.0) == pytest.approx(2.0)

    def test_reset(self):
        pid = Pid(kp=1.0, ki=1.0, kd=1.0)
        pid.update(5.0, dt=0.1)
        pid.reset()
        assert pid.update(0.0, dt=0.1) == 0.0

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            Pid(kp=1.0).update(1.0, dt=0.0)

    def test_closed_loop_converges(self):
        """PID driving a first-order plant settles at the setpoint."""
        pid = Pid(kp=2.0, ki=0.5, output_limit=10.0, integral_limit=5.0)
        state = 0.0
        setpoint = 3.0
        for _ in range(400):
            u = pid.update(setpoint - state, dt=0.05)
            state += (u - 0.3 * state) * 0.05
        assert state == pytest.approx(setpoint, abs=0.2)


class TestVectorPid:
    def test_uniform_construction(self):
        vp = VectorPid.uniform(3, kp=1.0)
        out = vp.update(np.array([1.0, 2.0, 3.0]), dt=0.1)
        assert np.allclose(out, [1.0, 2.0, 3.0])

    def test_shape_validation(self):
        vp = VectorPid.uniform(3, kp=1.0)
        with pytest.raises(ValueError):
            vp.update(np.array([1.0, 2.0]), dt=0.1)

    def test_reset_all_axes(self):
        vp = VectorPid.uniform(2, kp=0.0, ki=1.0)
        vp.update(np.array([1.0, 1.0]), dt=1.0)
        vp.reset()
        out = vp.update(np.array([0.0, 0.0]), dt=1.0)
        assert np.allclose(out, 0.0)


def _straight_trajectory(length=20.0, speed=4.0, start_time=0.0):
    return time_parameterize(
        [vec(0, 0, 2), vec(length, 0, 2)],
        max_speed=speed,
        max_acceleration=3.0,
        start_time=start_time,
    )


class TestPathTracker:
    def test_inactive_without_trajectory(self):
        tracker = PathTracker()
        status = tracker.update(vec(0, 0, 0), now=0.0)
        assert status.finished
        assert np.allclose(status.velocity_command, 0.0)

    def test_follows_straight_line(self):
        tracker = PathTracker(max_speed=5.0)
        tracker.set_trajectory(_straight_trajectory(), now=0.0)
        pos = vec(0, 0, 2)
        t = 0.0
        dt = 0.05
        for _ in range(600):
            status = tracker.update(pos, now=t)
            pos = pos + status.velocity_command * dt
            t += dt
            if status.finished:
                break
        assert status.finished
        assert np.linalg.norm(pos - vec(20, 0, 2)) < 1.0
        assert tracker.mean_error() < 1.0

    def test_command_speed_clamped(self):
        tracker = PathTracker(max_speed=2.0)
        tracker.set_trajectory(_straight_trajectory(speed=8.0), now=0.0)
        status = tracker.update(vec(-5, 0, 2), now=0.0)
        assert np.linalg.norm(status.velocity_command) <= 2.0 + 1e-9

    def test_governor_freezes_reference_when_behind(self):
        """A vehicle pinned in place must not see the reference run away —
        the regression that made braked drones cut corners."""
        tracker = PathTracker(max_speed=5.0)
        tracker.set_trajectory(_straight_trajectory(length=40.0), now=0.0)
        pos = vec(0, 0, 2)  # never moves
        errors = []
        for i in range(200):
            status = tracker.update(pos, now=i * 0.05)
            errors.append(status.cross_track_error)
        # With the governor, error saturates near the freeze threshold
        # instead of growing to the full path length.
        assert max(errors) < tracker.governor_freeze_error + 1.0

    def test_progress_reaches_one(self):
        tracker = PathTracker(max_speed=5.0)
        traj = _straight_trajectory(length=5.0)
        tracker.set_trajectory(traj, now=10.0)
        pos = vec(0, 0, 2)
        t = 10.0
        for _ in range(400):
            status = tracker.update(pos, now=t)
            pos = pos + status.velocity_command * 0.05
            t += 0.05
        assert status.progress == pytest.approx(1.0)

    def test_max_error_metric(self):
        tracker = PathTracker(max_speed=5.0)
        tracker.set_trajectory(_straight_trajectory(), now=0.0)
        tracker.update(vec(0, 2.5, 2), now=0.0)
        assert tracker.max_error() >= 2.5 - 1e-9
