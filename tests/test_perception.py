"""Tests for perception kernels: point cloud, SLAM, detection, tracking,
localization."""

import math

import numpy as np
import pytest

from repro.dynamics.state import VehicleState
from repro.perception import (
    CorrelationTracker,
    GpsLocalizer,
    GroundTruthLocalizer,
    ObjectDetector,
    SlamLocalizer,
    VisualSlam,
    YOLO,
    HOG,
    depth_to_point_cloud,
    generate_landmarks,
    max_velocity_for_fps,
)
from repro.perception.detection import BoundingBox
from repro.sensors import CameraIntrinsics, RgbdCamera
from repro.world import empty_world, make_box_obstacle, make_person, vec


# ---------------------------------------------------------------------------
# Point cloud
# ---------------------------------------------------------------------------
class TestPointCloud:
    def _image(self):
        world = empty_world((40, 40, 20))
        # Narrow wall: central rays hit it, side rays escape to max range.
        world.add(make_box_obstacle((6, 0, 5), (1, 8, 10), kind="wall"))
        cam = RgbdCamera(intrinsics=CameraIntrinsics(width=16, height=12))
        return cam.capture_depth(world, vec(0, 0, 5), yaw=0.0)

    def test_hits_land_on_wall(self):
        cloud = depth_to_point_cloud(self._image())
        assert cloud.size > 0
        assert np.all(np.abs(cloud.hits[:, 0] - 5.5) < 0.2)

    def test_misses_at_max_range(self):
        cloud = depth_to_point_cloud(self._image())
        # Rays over/under the wall escape to max range.
        assert cloud.misses.shape[0] > 0
        dists = np.linalg.norm(cloud.misses - cloud.origin, axis=1)
        assert np.all(dists >= 19.0)

    def test_stride_reduces_points(self):
        img = self._image()
        full = depth_to_point_cloud(img, stride=1)
        half = depth_to_point_cloud(img, stride=2)
        assert half.size <= full.size // 2 + 1

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            depth_to_point_cloud(self._image(), stride=0)

    def test_subsample_caps_size(self):
        cloud = depth_to_point_cloud(self._image())
        small = cloud.subsample(10, seed=1)
        assert small.hits.shape[0] <= 10
        assert small.misses.shape[0] <= 10

    def test_subsample_noop_when_small(self):
        cloud = depth_to_point_cloud(self._image())
        same = cloud.subsample(10_000)
        assert same.hits.shape == cloud.hits.shape


# ---------------------------------------------------------------------------
# SLAM
# ---------------------------------------------------------------------------
class TestVisualSlam:
    def _slam(self, seed=0, **kw):
        world = empty_world((60, 60, 20))
        for x in range(-25, 26, 10):
            world.add(make_box_obstacle((x, 18, 5), (2, 2, 10), kind="pillar"))
        landmarks = generate_landmarks(world, count=500, seed=seed)
        return VisualSlam(landmarks=landmarks, seed=seed, **kw)

    def test_landmark_generation_in_bounds(self):
        world = empty_world((60, 60, 20))
        pts = generate_landmarks(world, count=100, seed=1)
        assert pts.shape == (100, 3)
        assert np.all(pts >= world.bounds.lo - 1e-9)
        assert np.all(pts <= world.bounds.hi + 1e-9)

    def test_slow_motion_keeps_tracking(self):
        slam = self._slam()
        t = 0.0
        for i in range(50):
            x = i * 0.1  # 0.1 m between frames: high overlap
            status = slam.process_frame(vec(x, 0, 2), yaw=np.pi / 2, timestamp=t)
            t += 0.1
        assert slam.failure_rate < 0.1

    def test_fast_motion_loses_tracking(self):
        """The Fig. 8b effect: large inter-frame motion breaks tracking."""
        slam = self._slam()
        t = 0.0
        for i in range(30):
            x = -25 + i * 12.0  # 12 m jumps: frustum barely overlaps
            slam.process_frame(vec(x, 0, 2), yaw=np.pi / 2, timestamp=t)
            t += 1.0
        assert slam.failure_rate > 0.3

    def test_more_fps_allows_more_speed(self):
        """Same physical speed, double the frame rate -> fewer failures."""
        speed = 8.0

        def run(fps):
            slam = self._slam()
            t = 0.0
            for i in range(60):
                x = -28 + speed * t
                if x > 28:
                    break
                slam.process_frame(vec(x, 0, 2), yaw=np.pi / 2, timestamp=t)
                t += 1.0 / fps
            return slam.failure_rate

        assert run(10.0) <= run(1.0)

    def test_error_stays_bounded_while_tracking(self):
        slam = self._slam()
        t = 0.0
        errors = []
        for i in range(80):
            status = slam.process_frame(
                vec(i * 0.15, 0, 2), yaw=np.pi / 2, timestamp=t
            )
            errors.append(status.error_m)
            t += 0.1
        assert np.mean(errors) < 1.0

    def test_reset(self):
        slam = self._slam()
        slam.process_frame(vec(0, 0, 2), yaw=0.0, timestamp=0.0)
        slam.reset()
        assert slam.frames == 0
        assert slam.failures == 0

    def test_max_velocity_for_fps_monotone(self):
        vs = [max_velocity_for_fps(f) for f in (1, 2, 5, 10)]
        assert vs == sorted(vs)
        assert max_velocity_for_fps(0) == 0.0


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------
class TestObjectDetector:
    def _scene(self, person_dist=8.0):
        world = empty_world((80, 80, 20))
        world.add(make_person((person_dist, 0, 0.9), name="target"))
        cam = RgbdCamera(
            intrinsics=CameraIntrinsics(width=320, height=240, max_range_m=30)
        )
        return world, cam

    def test_detects_close_person(self):
        world, cam = self._scene(person_dist=6.0)
        detector = ObjectDetector(model=YOLO, seed=1)
        found = 0
        for _ in range(20):
            boxes = detector.detect(cam, world, vec(0, 0, 1.5), 0.0)
            if any(b.obstacle_name == "target" for b in boxes):
                found += 1
        assert found >= 15

    def test_distance_degrades_recall(self):
        detector_near = ObjectDetector(model=YOLO, seed=1)
        detector_far = ObjectDetector(model=YOLO, seed=1)
        world_near, cam = self._scene(person_dist=5.0)
        world_far, _ = self._scene(person_dist=28.0)
        for _ in range(30):
            detector_near.detect(cam, world_near, vec(0, 0, 1.5), 0.0)
            detector_far.detect(cam, world_far, vec(0, 0, 1.5), 0.0)
        assert detector_near.recall > detector_far.recall

    def test_occluded_person_rarely_detected(self):
        world, cam = self._scene(person_dist=12.0)
        world.add(make_box_obstacle((6, 0, 2), (1, 4, 4), kind="wall"))
        detector = ObjectDetector(model=YOLO, seed=2)
        found = 0
        for _ in range(30):
            boxes = detector.detect(cam, world, vec(0, 0, 1.5), 0.0)
            found += any(b.obstacle_name == "target" for b in boxes)
        assert found <= 5

    def test_yolo_beats_haar(self):
        """Model quality ordering: YOLO > HOG/Haar at moderate range."""
        from repro.perception.detection import HAAR

        world, cam = self._scene(person_dist=10.0)
        yolo = ObjectDetector(model=YOLO, seed=3)
        haar = ObjectDetector(model=HAAR, seed=3)
        for _ in range(40):
            yolo.detect(cam, world, vec(0, 0, 1.5), 0.0)
            haar.detect(cam, world, vec(0, 0, 1.5), 0.0)
        assert yolo.recall >= haar.recall

    def test_false_positives_unlinked(self):
        world, cam = self._scene()
        detector = ObjectDetector(model=HOG, seed=4)
        fps = []
        for _ in range(100):
            boxes = detector.detect(cam, world, vec(0, 0, 1.5), np.pi)  # look away
            fps.extend(b for b in boxes if b.obstacle_name is None)
        for b in fps:
            assert b.obstacle_name is None
            assert b.confidence <= 0.45

    def test_bounding_box_center_offset(self):
        box = BoundingBox(
            center_px=(200, 120), size_px=(10, 30), confidence=0.9, label="person"
        )
        assert box.center_offset_px(320, 240) == pytest.approx(40.0)


# ---------------------------------------------------------------------------
# Tracking
# ---------------------------------------------------------------------------
class TestCorrelationTracker:
    def _box(self, x=100.0, y=100.0):
        return BoundingBox((x, y), (10, 30), 0.9, "person")

    def test_initialize_and_follow(self):
        tracker = CorrelationTracker(seed=1)
        tracker.initialize(self._box())
        for i in range(20):
            state = tracker.update((100.0 + i * 3, 100.0))
            assert state.tracking
        assert tracker.lost_count == 0

    def test_large_jump_loses_target(self):
        tracker = CorrelationTracker(search_radius_px=12, seed=1)
        tracker.initialize(self._box())
        state = tracker.update((100.0 + 50.0, 100.0))
        assert not state.tracking
        assert tracker.lost_count == 1

    def test_target_leaving_frame_loses(self):
        tracker = CorrelationTracker(seed=1)
        tracker.initialize(self._box())
        state = tracker.update(None)
        assert not state.tracking

    def test_update_without_init_is_noop(self):
        tracker = CorrelationTracker(seed=1)
        state = tracker.update((50.0, 50.0))
        assert not state.tracking
        assert tracker.lost_count == 0

    def test_reinitialize_after_loss(self):
        tracker = CorrelationTracker(search_radius_px=10, seed=1)
        tracker.initialize(self._box())
        tracker.update((300.0, 300.0))  # lost
        tracker.initialize(self._box(200, 50))
        state = tracker.update((202.0, 52.0))
        assert state.tracking

    def test_kernel_name_by_mode(self):
        assert CorrelationTracker(mode="realtime").kernel_name == "tracking_realtime"
        assert CorrelationTracker(mode="buffered").kernel_name == "tracking_buffered"
        with pytest.raises(ValueError):
            CorrelationTracker(mode="psychic")


# ---------------------------------------------------------------------------
# Localization
# ---------------------------------------------------------------------------
class TestLocalizers:
    def test_ground_truth(self):
        loc = GroundTruthLocalizer()
        state = VehicleState(position=vec(3, 4, 5))
        assert np.allclose(loc.update(state), [3, 4, 5])
        assert loc.healthy

    def test_gps_localizer(self):
        loc = GpsLocalizer()
        state = VehicleState(position=vec(10, 20, 5))
        est = loc.update(state)
        assert est is not None
        assert np.linalg.norm(est - state.position) < 10.0
        assert loc.healthy

    def test_slam_localizer_tracks(self):
        world = empty_world((60, 60, 20))
        for x in range(-25, 26, 8):
            world.add(make_box_obstacle((x, 15, 5), (2, 2, 10)))
        slam = VisualSlam(landmarks=generate_landmarks(world, 500, seed=2))
        loc = SlamLocalizer(slam)
        for i in range(20):
            state = VehicleState(
                position=vec(i * 0.1, 0, 2), yaw=np.pi / 2, time=i * 0.1
            )
            est = loc.update(state)
        assert est is not None
        assert loc.failure_rate < 0.2
