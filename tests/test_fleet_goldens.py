"""Golden-trace regression through the *fleet* execution path.

``tests/test_goldens.py`` pins each workload's canonical short mission
to a stored metrics digest when flown sequentially.  This suite flies
all five canonical missions as **one fleet** and checks every mission
against the *same* stored digests — the strongest end-to-end statement
of the fleet contract: batched execution reproduces the sequential
goldens byte-for-byte in outcome space (exact ``success``/``replans``,
float metrics within the shared 1e-9 relative tolerance).

No separate fleet goldens exist, deliberately: if the fleet ever needed
its own digest files, bit-identity would already be broken.
"""

import pytest

from repro.core.api import available_workloads
from repro.fleet import FleetMission, run_workloads_fleet

from test_goldens import (
    GOLDEN_MISSIONS,
    assert_digest_matches,
    load_golden,
    report_digest,
)


@pytest.fixture(scope="module")
def fleet_digests():
    """Fly all five canonical golden missions as one fleet, once."""
    workloads = sorted(GOLDEN_MISSIONS)
    missions = []
    for workload in workloads:
        kwargs_factory, seed = GOLDEN_MISSIONS[workload]
        missions.append(
            FleetMission(
                workload=workload,
                seed=seed,
                cores=4,
                frequency_ghz=2.2,
                workload_kwargs=kwargs_factory(),
            )
        )
    results, errors = run_workloads_fleet(missions)
    for workload, error in zip(workloads, errors):
        assert error is None, f"fleet golden mission '{workload}' raised: {error}"
    return {
        workload: report_digest(workload, mission.seed, result.report)
        for workload, mission, result in zip(workloads, missions, results)
    }


@pytest.mark.golden
@pytest.mark.parametrize("workload", sorted(GOLDEN_MISSIONS))
def test_fleet_golden_trace(workload, fleet_digests):
    """Each fleet-flown canonical mission matches the sequential golden."""
    assert_digest_matches(
        workload, fleet_digests[workload], load_golden(workload),
        context="golden (fleet path)",
    )


@pytest.mark.golden
def test_fleet_goldens_cover_every_workload():
    """The fleet golden sweep must fly every registered workload."""
    assert sorted(GOLDEN_MISSIONS) == available_workloads()
