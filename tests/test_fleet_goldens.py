"""Golden-trace regression through the *fleet* execution path.

``tests/test_goldens.py`` pins each workload's canonical short mission
to a stored metrics digest when flown sequentially.  This suite flies
all five canonical missions as **one fleet** and checks every mission
against the *same* stored digests — the strongest end-to-end statement
of the fleet contract: batched execution reproduces the sequential
goldens byte-for-byte in outcome space (exact ``success``/``replans``,
float metrics within the shared 1e-9 relative tolerance).

No separate fleet goldens exist, deliberately: if the fleet ever needed
its own digest files, bit-identity would already be broken.

The fleet flies **under an installed span tracer**: since PR 9 fleets
trace (per-mission streams + the gate lane), so the goldens pin the
strictest combination — tracing enabled AND fleet-batched — and the
trace itself must be structurally valid with every mission's phase
self-times covering ≥90% of that mission's traced wall.
"""

import pytest

from repro.core.api import available_workloads
from repro.fleet import FleetMission, run_workloads_fleet
from repro.observability import trace
from repro.observability.export import (
    aggregate_phases,
    chrome_trace,
    spans_by_mission,
    validate_chrome_trace,
)

from test_goldens import (
    GOLDEN_MISSIONS,
    assert_digest_matches,
    load_golden,
    report_digest,
)


@pytest.fixture(scope="module")
def fleet_flight():
    """Fly all five canonical golden missions as one *traced* fleet, once."""
    workloads = sorted(GOLDEN_MISSIONS)
    missions = []
    for workload in workloads:
        kwargs_factory, seed = GOLDEN_MISSIONS[workload]
        missions.append(
            FleetMission(
                workload=workload,
                seed=seed,
                cores=4,
                frequency_ghz=2.2,
                workload_kwargs=kwargs_factory(),
            )
        )
    with trace.capture() as tracer:
        results, errors = run_workloads_fleet(missions)
    for workload, error in zip(workloads, errors):
        assert error is None, f"fleet golden mission '{workload}' raised: {error}"
    digests = {
        workload: report_digest(workload, mission.seed, result.report)
        for workload, mission, result in zip(workloads, missions, results)
    }
    return digests, tracer


@pytest.fixture(scope="module")
def fleet_digests(fleet_flight):
    return fleet_flight[0]


@pytest.mark.golden
@pytest.mark.parametrize("workload", sorted(GOLDEN_MISSIONS))
def test_fleet_golden_trace(workload, fleet_digests):
    """Each traced, fleet-flown canonical mission matches the
    sequential golden digest bit-for-bit."""
    assert_digest_matches(
        workload, fleet_digests[workload], load_golden(workload),
        context="golden (traced fleet path)",
    )


@pytest.mark.golden
def test_fleet_golden_trace_is_valid_chrome_trace(fleet_flight):
    """The trace the golden fleet emitted passes the schema validator
    and renders one swimlane per mission plus the gate lane."""
    _, tracer = fleet_flight
    assert tracer.open_depth == 0
    doc = chrome_trace(tracer, process_name="repro-fleet")
    assert validate_chrome_trace(doc) == []
    lanes = doc["otherData"]["lanes"]
    mission_lanes = [label for label in lanes if not label.endswith(".gate")]
    assert len(mission_lanes) == len(GOLDEN_MISSIONS)
    assert "fleet.gate" in lanes
    coords = {(v["pid"], v["tid"]) for v in lanes.values()}
    assert len(coords) == len(lanes)


@pytest.mark.golden
def test_fleet_golden_trace_per_mission_coverage(fleet_flight):
    """Per-mission phase self-times explain ≥90% of that mission's
    traced wall — the same coverage bar the sequential profile meets."""
    _, tracer = fleet_flight
    split = spans_by_mission(tracer.spans)
    mission_labels = [
        label for label in split
        if label is not None and not label.endswith(".gate")
    ]
    assert len(mission_labels) == len(GOLDEN_MISSIONS)
    for label in mission_labels:
        root = aggregate_phases(split[label])
        mission_total = root.children["mission"].total_s
        self_sum = sum(node.self_s for node in root.walk())
        assert self_sum >= 0.9 * mission_total, label


@pytest.mark.golden
def test_fleet_goldens_cover_every_workload():
    """The fleet golden sweep must fly every registered workload."""
    assert sorted(GOLDEN_MISSIONS) == available_workloads()
