"""Tests for fault injection and the map-quality metric."""

import numpy as np
import pytest

from repro.compute import JETSON_TX2, KernelModel, PlatformConfig
from repro.perception import OctoMap, depth_to_point_cloud
from repro.perception.map_quality import (
    MapQuality,
    evaluate_map,
    resolution_quality_sweep,
)
from repro.reliability import FaultInjector, FaultModel
from repro.sensors import CameraIntrinsics, RgbdCamera
from repro.world import empty_world, make_box_obstacle, vec

FAST = PlatformConfig(JETSON_TX2, 4, 2.2)


class TestFaultModel:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultModel(crash_probability=1.5)
        with pytest.raises(ValueError):
            FaultModel(corruption_probability=-0.1)

    def test_default_is_fault_free(self):
        fm = FaultModel()
        assert fm.crash_probability == 0.0
        assert fm.hang_probability == 0.0


class TestFaultInjector:
    def test_no_faults_matches_base_model(self):
        base = KernelModel()
        injector = FaultInjector(base_model=base, seed=1)
        assert injector.runtime_s("octomap", FAST) == pytest.approx(
            base.runtime_s("octomap", FAST), rel=0.15
        )
        assert injector.fault_counts()["crashes"] == 0

    def test_crashes_extend_latency(self):
        base = KernelModel()
        injector = FaultInjector(
            base_model=base,
            fault_model=FaultModel(crash_probability=0.5),
            seed=2,
        )
        clean = base.runtime_s("octomap", FAST)
        runtimes = [injector.runtime_s("octomap", FAST) for _ in range(100)]
        assert injector.fault_counts()["crashes"] > 10
        assert np.mean(runtimes) > clean * 1.3

    def test_hangs_add_duration(self):
        injector = FaultInjector(
            base_model=KernelModel(),
            fault_model=FaultModel(hang_probability=1.0, hang_duration_s=3.0),
            seed=3,
        )
        runtime = injector.runtime_s("collision_check", FAST)
        assert runtime > 3.0

    def test_corruption_perturbs_one_element(self):
        injector = FaultInjector(
            base_model=KernelModel(),
            fault_model=FaultModel(
                corruption_probability=1.0, corruption_std=5.0
            ),
            seed=4,
        )
        original = np.zeros(5)
        corrupted = injector.corrupt_vector(original)
        assert np.array_equal(original, np.zeros(5))  # input untouched
        assert np.count_nonzero(corrupted) == 1

    def test_kernel_model_surface_compatible(self):
        """The injector can stand in for a KernelModel in a Simulation."""
        from repro.core import Simulation, SimulationConfig
        from repro.world import empty_world

        injector = FaultInjector(
            base_model=KernelModel(),
            fault_model=FaultModel(crash_probability=0.3),
            seed=5,
        )
        sim = Simulation(
            world=empty_world((30, 30, 10)),
            kernel_model=injector,
            config=SimulationConfig(seed=5),
        )
        done = []
        sim.submit_kernel("octomap", on_done=lambda j: done.append(j))
        sim.run_until(lambda s: bool(done), timeout_s=30)
        assert done


class TestMapQuality:
    def _scene(self):
        world = empty_world((30, 30, 10))
        world.add(make_box_obstacle((6, 0, 2), (2, 8, 4), kind="wall"))
        camera = RgbdCamera(intrinsics=CameraIntrinsics(width=48, height=36))
        scans = [
            depth_to_point_cloud(
                camera.capture_depth(world, vec(-4, y, 2), yaw=0.0)
            )
            for y in (-4.0, 0.0, 4.0)
        ]
        return world, scans

    def test_accurate_map_scores_high(self):
        world, scans = self._scene()
        om = OctoMap(resolution=0.25, bounds=world.bounds)
        for cloud in scans:
            om.insert_scan(cloud, carve_rays=80)
        quality = evaluate_map(om, world, samples=2000, seed=1)
        assert quality.accuracy > 0.9
        assert quality.safety_violation_rate < 0.02
        assert quality.unknown > 0.0  # plenty of space never observed

    def test_empty_map_all_unknown(self):
        world, _ = self._scene()
        om = OctoMap(resolution=0.5, bounds=world.bounds)
        quality = evaluate_map(om, world, samples=500, seed=1)
        assert quality.unknown == pytest.approx(1.0)
        assert quality.accuracy == 0.0

    def test_coarse_maps_inflate(self):
        """Fig. 17 quantified: inflation grows with voxel size."""
        world, scans = self._scene()
        results = resolution_quality_sweep(
            world, scans, resolutions=(0.15, 0.8), seed=1
        )
        fine_quality = results[0][1]
        coarse_quality = results[1][1]
        assert coarse_quality.inflation_rate > fine_quality.inflation_rate

    def test_sample_validation(self):
        world, _ = self._scene()
        om = OctoMap(resolution=0.5, bounds=world.bounds)
        with pytest.raises(ValueError):
            evaluate_map(om, world, samples=0)
