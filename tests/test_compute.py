"""Tests for platform models, kernel runtime model, scheduler, and cloud."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compute import (
    CLOUD_I7_GTX1080,
    CloudOffloadModel,
    ComputeScheduler,
    DEFAULT_KERNELS,
    FIVE_G_LINK,
    JETSON_TX2,
    KernelModel,
    KernelProfile,
    LTE_LINK,
    NetworkLink,
    PlatformConfig,
    octomap_runtime_scale,
    tx2_operating_points,
)


class TestPlatformConfig:
    def test_tx2_grid_is_3x3(self):
        points = tx2_operating_points()
        assert len(points) == 9
        assert {(p.cores, p.frequency_ghz) for p in points} == {
            (c, f) for c in (2, 3, 4) for f in (0.8, 1.5, 2.2)
        }

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(JETSON_TX2, cores=5, frequency_ghz=2.2)
        with pytest.raises(ValueError):
            PlatformConfig(JETSON_TX2, cores=0, frequency_ghz=2.2)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(JETSON_TX2, cores=4, frequency_ghz=1.0)

    def test_frequency_ratio(self):
        cfg = PlatformConfig(JETSON_TX2, 4, 1.5)
        assert cfg.frequency_ratio == pytest.approx(1.5 / 2.2)

    def test_cpu_power_tx2_in_realistic_range(self):
        """The paper: 'A state-of-the-art compute platform like the Nvidia
        TX2 consumes about 10 W on average.'"""
        cfg = PlatformConfig(JETSON_TX2, 4, 2.2)
        busy = cfg.cpu_power_w(busy_cores=2.0, gpu_active=True)
        assert 5.0 <= busy <= 20.0
        assert cfg.max_cpu_power_w() <= 20.0

    def test_cpu_power_increases_with_frequency(self):
        slow = PlatformConfig(JETSON_TX2, 4, 0.8)
        fast = PlatformConfig(JETSON_TX2, 4, 2.2)
        assert fast.cpu_power_w(4) > slow.cpu_power_w(4)

    def test_cpu_power_clamps_busy_cores(self):
        cfg = PlatformConfig(JETSON_TX2, 2, 2.2)
        assert cfg.cpu_power_w(10) == cfg.cpu_power_w(2)

    def test_with_operating_point(self):
        cfg = PlatformConfig(JETSON_TX2, 4, 2.2)
        other = cfg.with_operating_point(2, 0.8)
        assert (other.cores, other.frequency_ghz) == (2, 0.8)
        assert other.spec is JETSON_TX2


class TestKernelProfiles:
    FAST = PlatformConfig(JETSON_TX2, 4, 2.2)
    SLOW = PlatformConfig(JETSON_TX2, 2, 0.8)

    def test_base_runtime_at_reference(self):
        p = KernelProfile(name="k", base_ms=100.0, serial_fraction=0.0)
        assert p.runtime_ms(self.FAST) == pytest.approx(100.0)

    def test_runtime_slower_at_lower_frequency(self):
        p = DEFAULT_KERNELS["octomap"]
        assert p.runtime_ms(self.SLOW) > p.runtime_ms(self.FAST)

    def test_serial_kernel_ignores_cores(self):
        p = KernelProfile(name="k", base_ms=10.0, serial_fraction=1.0)
        two = PlatformConfig(JETSON_TX2, 2, 2.2)
        four = PlatformConfig(JETSON_TX2, 4, 2.2)
        assert p.runtime_ms(two) == pytest.approx(p.runtime_ms(four))

    def test_parallel_kernel_scales_with_cores(self):
        p = KernelProfile(name="k", base_ms=10.0, serial_fraction=0.0)
        two = PlatformConfig(JETSON_TX2, 2, 2.2)
        four = PlatformConfig(JETSON_TX2, 4, 2.2)
        assert p.runtime_ms(two) == pytest.approx(2 * p.runtime_ms(four))

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelProfile(name="k", base_ms=-1.0)
        with pytest.raises(ValueError):
            KernelProfile(name="k", base_ms=1.0, serial_fraction=1.5)

    def test_jitter_reproducible_with_seeded_rng(self):
        p = KernelProfile(name="k", base_ms=10.0, jitter=0.2)
        a = p.runtime_ms(self.FAST, np.random.default_rng(5))
        b = p.runtime_ms(self.FAST, np.random.default_rng(5))
        assert a == b

    def test_speedup_corners_match_paper_shape(self):
        """Paper speedups from (2c, 0.8 GHz) to (4c, 2.2 GHz), Section V-C.

        We verify the calibrated orderings: tracking scales most (~10X),
        motion planning and OctoMap scale strongly (3-9X), GPU-bound
        detection scales least (~1.8-2.5X).
        """
        model_pd = KernelModel(workload="package_delivery")
        model_map = KernelModel(workload="mapping")
        model_sar = KernelModel(workload="search_rescue")
        track = DEFAULT_KERNELS["tracking_buffered"].speedup(self.SLOW, self.FAST)
        planning = DEFAULT_KERNELS["shortest_path"].speedup(self.SLOW, self.FAST)
        octomap_pd = model_pd.profile("octomap").speedup(self.SLOW, self.FAST)
        octomap_map = model_map.profile("octomap").speedup(self.SLOW, self.FAST)
        detect_sar = model_sar.profile("object_detection_yolo").speedup(
            self.SLOW, self.FAST
        )
        assert track > 7.0  # paper: 10X
        assert planning > 6.0  # paper: 9.2X
        assert 2.0 <= octomap_pd <= 4.0  # paper: 2.9X
        assert 4.5 <= octomap_map <= 7.5  # paper: 6X
        assert 1.4 <= detect_sar <= 2.6  # paper: 1.8X

    def test_table1_base_runtimes(self):
        """Table I values at 4 cores / 2.2 GHz (ms)."""
        fast = self.FAST
        model = KernelModel(workload="package_delivery")
        assert model.runtime_s("octomap", fast) * 1000 == pytest.approx(630, rel=0.01)
        assert model.runtime_s("point_cloud", fast) * 1000 == pytest.approx(2, rel=0.01)
        model = KernelModel(workload="mapping")
        assert model.runtime_s("frontier_exploration", fast) * 1000 == pytest.approx(
            2647, rel=0.01
        )
        model = KernelModel(workload="aerial_photography")
        assert model.runtime_s("object_detection_yolo", fast) * 1000 == pytest.approx(
            307, rel=0.01
        )
        assert model.runtime_s("tracking_realtime", fast) * 1000 == pytest.approx(
            18, rel=0.01
        )


class TestKernelModel:
    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            KernelModel().profile("warp_drive")

    def test_workload_override_applies(self):
        generic = KernelModel().profile("octomap")
        pd = KernelModel(workload="package_delivery").profile("octomap")
        assert pd.base_ms != generic.base_ms

    def test_explicit_override_beats_workload(self):
        model = KernelModel(workload="package_delivery")
        custom = KernelProfile(name="octomap", base_ms=1.0)
        model.set_override("octomap", custom)
        assert model.profile("octomap").base_ms == 1.0

    def test_scale_kernel(self):
        model = KernelModel()
        base = model.profile("octomap").base_ms
        model.scale_kernel("octomap", 0.5)
        assert model.profile("octomap").base_ms == pytest.approx(base * 0.5)

    def test_octomap_runtime_scale_shape(self):
        """Fig. 18: ~6.5X coarser resolution -> ~4.5X faster processing."""
        speedup = octomap_runtime_scale(0.15) / octomap_runtime_scale(1.0)
        assert 3.5 <= speedup <= 5.5
        with pytest.raises(ValueError):
            octomap_runtime_scale(0.0)


class TestComputeScheduler:
    def _sched(self, cores=2):
        cfg = PlatformConfig(JETSON_TX2, cores, 2.2)
        return ComputeScheduler(config=cfg, kernel_model=KernelModel())

    def test_job_completes_after_runtime(self):
        s = self._sched()
        job = s.submit("collision_check")  # 1 ms
        done = s.advance_to(0.0005)
        assert not done
        done = s.advance_to(0.01)
        assert job in done
        assert job.done

    def test_callback_fires(self):
        s = self._sched()
        fired = []
        s.submit("collision_check", on_done=lambda j: fired.append(j.kernel))
        s.advance_to(1.0)
        assert fired == ["collision_check"]

    def test_fifo_queueing_when_cores_busy(self):
        s = self._sched(cores=2)
        # Two 2-core... slam uses 2 cores; submit two slams: second queues.
        a = s.submit("slam")
        b = s.submit("slam")
        s.advance_to(0.001)
        assert a.started_at is not None
        assert b.started_at is None
        s.advance_to(10.0)
        assert b.done
        assert b.queue_delay_s > 0

    def test_duration_override(self):
        s = self._sched()
        job = s.submit("octomap", duration_s=0.123)
        s.advance_to(1.0)
        assert job.latency_s == pytest.approx(0.123)

    def test_busy_cores_tracking(self):
        s = self._sched(cores=4)
        s.submit("slam")  # 2 cores
        s.advance_to(0.001)
        assert s.busy_cores == 2
        s.advance_to(10.0)
        assert s.busy_cores == 0

    def test_gpu_active_flag(self):
        s = self._sched(cores=4)
        s.submit("object_detection_yolo")
        s.advance_to(0.001)
        assert s.gpu_active
        s.advance_to(10.0)
        assert not s.gpu_active

    def test_energy_accumulates(self):
        s = self._sched()
        s.submit("octomap")
        s.advance_to(5.0)
        assert s.compute_energy_j > 0
        # Average power at least idle power.
        assert s.average_compute_power_w() >= s.config.spec.idle_power_w - 1e-9

    def test_cannot_move_backwards(self):
        s = self._sched()
        s.advance_to(1.0)
        with pytest.raises(ValueError):
            s.advance_to(0.5)

    def test_kernel_latency_stats(self):
        s = self._sched()
        s.submit("collision_check")
        s.submit("collision_check")
        s.advance_to(1.0)
        stats = s.kernel_latency_stats()
        assert stats["collision_check"]["count"] == 2.0
        assert stats["collision_check"]["mean_s"] > 0

    def test_contention_extends_latency(self):
        """Queueing delay appears when more jobs than cores — the effect
        that makes core scaling matter for the concurrent workloads."""
        narrow = self._sched(cores=2)
        wide = ComputeScheduler(
            config=PlatformConfig(JETSON_TX2, 4, 2.2), kernel_model=KernelModel()
        )
        for s in (narrow, wide):
            jobs = [s.submit("slam") for _ in range(3)]  # 2 cores each
            s.advance_to(10.0)
            s.jobs = jobs
        lat_narrow = max(j.latency_s for j in narrow.jobs)
        lat_wide = max(j.latency_s for j in wide.jobs)
        assert lat_narrow > lat_wide


class TestCloudOffload:
    def test_link_transfer_time(self):
        link = NetworkLink(bandwidth_mbps=1000.0, latency_ms=2.0)
        t = link.transfer_time_s(1.25e6)  # 10 Mbit at 1 Gb/s = 10 ms
        assert t == pytest.approx(0.002 + 0.01)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            NetworkLink(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            NetworkLink(reliability=2.0)

    def test_offloaded_planning_faster_on_5g(self):
        """Fig. 16: the cloud gives ~3X speedup on planning kernels."""
        model = CloudOffloadModel(kernel_model=KernelModel(workload="mapping"))
        speedup = model.speedup("frontier_exploration")
        assert speedup > 2.0

    def test_non_offloaded_kernel_runs_on_edge(self):
        model = CloudOffloadModel()
        assert not model.is_offloaded("octomap")
        edge = model.kernel_model.runtime_s("octomap", model.edge_config)
        assert model.effective_runtime_s("octomap") == pytest.approx(edge)

    def test_lte_link_reduces_benefit(self):
        fast = CloudOffloadModel(link=FIVE_G_LINK)
        slow = CloudOffloadModel(link=LTE_LINK)
        assert fast.speedup("frontier_exploration") > slow.speedup(
            "frontier_exploration"
        )

    def test_tiny_kernels_not_worth_offloading(self):
        model = CloudOffloadModel(
            offloaded_kernels=frozenset({"collision_check"})
        )
        # 1 ms kernel: network round trip dominates.
        assert model.speedup("collision_check") < 1.0
