"""Tests for the observability layer: tracer, metrics, exporters, and
the invariants instrumentation must never break.

The two load-bearing guarantees:

1. **Zero behavioral impact** — the golden canonical missions produce
   bit-identical digests with tracing enabled (tracing reads only
   ``perf_counter``, never the sim RNG or clock).
2. **Honest exports** — the Chrome trace document always passes its own
   validator, and the phase tree's self-times sum to the traced total
   (the ``repro profile`` coverage guarantee).
"""

import json

import pytest

from repro.campaign import PROFILE_SCHEMA, RunSpec, execute_run
from repro.campaign.runner import _worker_failure_record
from repro.observability import (
    MetricsRegistry,
    Tracer,
    aggregate_phases,
    chrome_trace,
    format_phase_summary,
    format_phase_tree,
    merge_phase_summaries,
    phase_summary,
    spans_to_csv,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observability import trace
from repro.observability.export import CSV_FIELDS

from test_goldens import fly_golden_mission


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_by_default(self):
        assert trace.get_tracer() is None
        assert not trace.enabled()
        # The disabled fast path hands out the shared no-op singleton.
        assert trace.span("anything") is trace.span("else")

    def test_noop_helpers_do_nothing_when_disabled(self):
        with trace.span("x") as sp:
            sp.set(a=1)  # must not raise
        trace.count("c")
        trace.observe("h", 2.0)
        trace.set_sim_clock(lambda: 0.0)
        assert trace.get_tracer() is None

    def test_capture_installs_and_restores(self):
        assert not trace.enabled()
        with trace.capture() as tracer:
            assert trace.enabled()
            assert trace.get_tracer() is tracer
        assert not trace.enabled()

    def test_capture_nests(self):
        with trace.capture() as outer:
            with trace.capture() as inner:
                assert trace.get_tracer() is inner
            assert trace.get_tracer() is outer

    def test_span_nesting_builds_paths(self):
        with trace.capture() as tracer:
            with trace.span("a"):
                with trace.span("b", "cat"):
                    pass
                with trace.span("c"):
                    pass
        paths = sorted("/".join(sp.path) for sp in tracer.spans)
        assert paths == ["a", "a/b", "a/c"]
        assert tracer.open_depth == 0

    def test_span_durations_and_attrs(self):
        with trace.capture() as tracer:
            with trace.span("work", "planning") as sp:
                sp.set(iterations=42)
        (span,) = tracer.spans
        assert span.category == "planning"
        assert span.duration_s >= 0.0
        assert span.attrs == {"iterations": 42}

    def test_sim_clock_stamps_sim_time(self):
        now = {"t": 1.0}
        with trace.capture(sim_clock=lambda: now["t"]) as tracer:
            with trace.span("tick"):
                now["t"] = 3.5
        (span,) = tracer.spans
        assert span.sim_t0 == 1.0
        assert span.sim_t1 == 3.5
        assert span.sim_duration_s == pytest.approx(2.5)

    def test_out_of_order_finish_drops_orphans(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")  # never finished explicitly
        tracer.finish(outer)  # closes outer, drops the orphan
        assert tracer.open_depth == 0
        assert [sp.name for sp in tracer.spans] == ["outer"]

    def test_install_uninstall(self):
        tracer = trace.install()
        try:
            assert trace.get_tracer() is tracer
        finally:
            assert trace.uninstall() is tracer
        assert not trace.enabled()


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("replans").inc()
        reg.counter("replans").inc(2)
        reg.gauge("depth").set(4.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"replans": 3}
        assert snap["gauges"] == {"depth": 4.0}

    def test_histogram_stats_and_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("batch")
        for value in (1, 2, 7, 1024):
            h.observe(value)
        snap = reg.snapshot()["histograms"]["batch"]
        assert snap["count"] == 4
        assert snap["sum"] == 1034
        assert snap["min"] == 1
        assert snap["max"] == 1024
        # Power-of-two buckets: 1 -> 0, 2 -> 1, 7 -> ceil(log2 7)=3,
        # 1024 -> 10.
        assert snap["buckets"] == {"0": 1, "1": 1, "3": 1, "10": 1}

    def test_cross_kind_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_snapshot_is_deterministically_ordered(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert list(reg.snapshot()["counters"]) == ["a", "b"]


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _traced_sample():
    with trace.capture() as tracer:
        with trace.span("mission") as sp:
            sp.set(workload="unit")
            with trace.span("setup"):
                pass
            with trace.span("fly"):
                with trace.span("tick.compute", "compute"):
                    pass
        trace.count("mission.replans", 2)
        trace.observe("batch", 8)
    return tracer


class TestChromeTrace:
    def test_document_validates(self):
        tracer = _traced_sample()
        doc = chrome_trace(tracer)
        assert validate_chrome_trace(doc) == []
        # one metadata event + one X event per span
        assert len(doc["traceEvents"]) == len(tracer.spans) + 1
        assert doc["otherData"]["metrics"]["counters"] == {
            "mission.replans": 2
        }

    def test_round_trip_through_disk(self, tmp_path):
        tracer = _traced_sample()
        out = tmp_path / "trace.json"
        write_chrome_trace(out, tracer)
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []

    def test_validator_rejects_drift(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        bad_event = {
            "traceEvents": [{"ph": "X", "pid": 1, "tid": 0, "name": "x",
                             "ts": -5.0, "dur": "oops"}],
            "otherData": {"schema": "repro-trace/1"},
        }
        problems = validate_chrome_trace(bad_event)
        assert any("ts" in p for p in problems)
        assert any("dur" in p for p in problems)

    def test_validator_rejects_wrong_schema(self):
        doc = chrome_trace(_traced_sample())
        doc["otherData"]["schema"] = "repro-trace/99"
        assert any("schema" in p for p in validate_chrome_trace(doc))


class TestCsvExport:
    def test_csv_has_header_and_rows(self):
        tracer = _traced_sample()
        text = spans_to_csv(tracer)
        lines = text.strip().splitlines()
        assert lines[0] == ",".join(CSV_FIELDS)
        assert len(lines) == len(tracer.spans) + 1


class TestPhaseAggregation:
    def test_self_total_math(self):
        tracer = _traced_sample()
        root = aggregate_phases(tracer.spans)
        assert root.total_s == pytest.approx(root.child_total_s)
        mission = root.children["mission"]
        assert set(mission.children) == {"setup", "fly"}
        # Self-times over the whole tree sum to the root total, exactly
        # the coverage guarantee repro profile prints.
        self_sum = sum(node.self_s for node in root.walk())
        assert self_sum == pytest.approx(root.total_s, rel=1e-9)

    def test_phase_summary_flat_keys(self):
        tracer = _traced_sample()
        summary = phase_summary(tracer)
        assert set(summary) == {
            "mission", "mission/setup", "mission/fly",
            "mission/fly/tick.compute",
        }
        for stats in summary.values():
            assert set(stats) == {"count", "total_s", "self_s", "sim_total_s"}

    def test_merge_phase_summaries_sums(self):
        a = {"x": {"count": 1, "total_s": 1.0, "self_s": 0.5,
                   "sim_total_s": 0.0}}
        b = {"x": {"count": 2, "total_s": 3.0, "self_s": 1.5,
                   "sim_total_s": 1.0},
             "y": {"count": 1, "total_s": 0.5, "self_s": 0.5,
                   "sim_total_s": 0.0}}
        merged = merge_phase_summaries([a, b])
        assert merged["x"] == {"count": 3, "total_s": 4.0, "self_s": 2.0,
                               "sim_total_s": 1.0}
        assert list(merged) == ["x", "y"]

    def test_format_phase_tree_reports_coverage(self):
        tracer = _traced_sample()
        text = format_phase_tree(aggregate_phases(tracer.spans))
        assert "mission" in text
        assert "coverage" in text
        assert "% wall" in text

    def test_format_phase_summary_table(self):
        text = format_phase_summary(
            {"a/b": {"count": 2, "total_s": 1.0, "self_s": 1.0,
                     "sim_total_s": 0.0}}
        )
        assert "a/b" in text
        assert "total (s)" in text


# ----------------------------------------------------------------------
# The zero-impact guarantee: goldens bit-identical under tracing
# ----------------------------------------------------------------------
class TestTracingInvariants:
    @pytest.mark.parametrize("workload", ["scanning", "package_delivery"])
    def test_golden_mission_bit_identical_with_tracing(self, workload):
        baseline = fly_golden_mission(workload)
        with trace.capture() as tracer:
            traced = fly_golden_mission(workload)
        assert traced == baseline
        assert tracer.spans, "mission produced no spans under tracing"
        assert tracer.open_depth == 0

    def test_mission_trace_validates_and_covers_wall(self):
        with trace.capture() as tracer:
            fly_golden_mission("scanning")
        doc = chrome_trace(tracer)
        assert validate_chrome_trace(doc) == []
        root = aggregate_phases(tracer.spans)
        self_sum = sum(node.self_s for node in root.walk())
        # The acceptance bar: phase self-times explain >= 90% of the
        # traced mission wall time (the root span wraps run_workload).
        mission_total = root.children["mission"].total_s
        assert self_sum >= 0.9 * mission_total
        names = {sp.name for sp in tracer.spans}
        assert "mission" in names
        assert "tick.compute" in names
        assert "plan.smooth" in names


# ----------------------------------------------------------------------
# Campaign profile records + the wall_time_s regression
# ----------------------------------------------------------------------
def _fast_run() -> RunSpec:
    return RunSpec(
        "scanning", 4, 2.2, 1,
        workload_kwargs={"area_width": 40.0, "area_length": 24.0},
    )


class TestCampaignProfiles:
    def test_unprofiled_record_has_no_profile_key(self):
        record = execute_run(_fast_run())
        assert record["status"] == "ok"
        assert "profile" not in record

    def test_profiled_record_attaches_profile(self):
        record = execute_run(_fast_run(), profile=True, queue_wait_s=0.25)
        assert record["status"] == "ok"
        profile = record["profile"]
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["queue_wait_s"] == 0.25
        assert "mission" in profile["phases"]
        assert profile["phases"]["mission"]["total_s"] > 0
        assert "scenario_cache" in profile
        # Profiling must not perturb the record payload itself.
        baseline = execute_run(_fast_run())
        stripped = {
            k: v for k, v in record.items()
            if k not in ("profile", "wall_time_s")
        }
        unprofiled = {
            k: v for k, v in baseline.items() if k != "wall_time_s"
        }
        assert stripped == unprofiled

    def test_profiling_leaves_no_tracer_installed(self):
        execute_run(_fast_run(), profile=True)
        assert not trace.enabled()

    def test_error_record_reports_real_wall_time(self):
        # A run that raises during construction still costs wall time,
        # and the record must say so (not the old 0.0 placeholder).
        bad = RunSpec("scanning", 4, 2.2, 1, workload_kwargs={"bogus": 1})
        record = execute_run(bad)
        assert record["status"] == "error"
        assert record["wall_time_s"] > 0.0

    def test_worker_failure_record_carries_elapsed(self):
        record = _worker_failure_record(
            _fast_run(), RuntimeError("boom"), elapsed_s=1.5
        )
        assert record["status"] == "error"
        assert record["wall_time_s"] == 1.5
        # Negative elapsed (clock weirdness) clamps rather than lies.
        clamped = _worker_failure_record(
            _fast_run(), RuntimeError("boom"), elapsed_s=-0.1
        )
        assert clamped["wall_time_s"] == 0.0


# ----------------------------------------------------------------------
# Concurrent streams + mission attribution (fleet-aware tracing, PR 9)
# ----------------------------------------------------------------------
class TestStreams:
    def test_mission_scope_tags_spans(self):
        with trace.capture() as tracer:
            with trace.mission_scope("m0", group="fleet"):
                with trace.span("mission"):
                    with trace.span("fly"):
                        pass
            with trace.span("outside"):
                pass
        tagged = {sp.name: sp.mission for sp in tracer.spans}
        assert tagged["mission"] == "m0"
        assert tagged["fly"] == "m0"
        assert tagged["outside"] is None
        assert tracer.mission_groups == {"m0": "fleet"}

    def test_threads_do_not_interleave_nesting(self):
        import threading

        def _mission(label):
            with trace.mission_scope(label):
                with trace.span("mission"):
                    for _ in range(50):
                        with trace.span("tick"):
                            pass

        with trace.capture() as tracer:
            threads = [
                threading.Thread(target=_mission, args=(f"m{i}",))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert tracer.open_depth == 0
        # Every tick nests under its own mission's root, never a peer's.
        for sp in tracer.spans:
            if sp.name == "tick":
                assert sp.path == ("mission", "tick"), sp.mission
        per_mission = {}
        for sp in tracer.spans:
            per_mission.setdefault(sp.mission, []).append(sp)
        assert set(per_mission) == {"m0", "m1", "m2", "m3"}
        for spans in per_mission.values():
            assert sum(1 for sp in spans if sp.name == "tick") == 50

    def test_use_stream_reattributes_from_another_thread(self):
        """The gate pattern: one thread pushes spans onto a named stream
        another context opened, nesting under its open spans."""
        with trace.capture() as tracer:
            stream = tracer.stream_for("m0")
            with tracer.use_stream("m0"):
                outer = tracer.start("mission")
                with tracer.span("tick.compute", "compute"):
                    pass
                tracer.finish(outer)
            assert not stream.stack
        compute = next(sp for sp in tracer.spans if sp.name == "tick.compute")
        assert compute.path == ("mission", "tick.compute")
        assert compute.mission == "m0"

    def test_per_stream_sim_clocks(self):
        clocks = {"m0": 1.0, "m1": 100.0}
        with trace.capture() as tracer:
            for label, value in clocks.items():
                with tracer.use_stream(label):
                    trace.set_sim_clock(lambda v=value: v)
                    with trace.span("tick"):
                        pass
        for sp in tracer.spans:
            assert sp.sim_t0 == clocks[sp.mission]

    def test_open_depth_sums_all_streams(self):
        with trace.capture() as tracer:
            with tracer.use_stream("a"):
                sp_a = tracer.start("x")
            with tracer.use_stream("b"):
                sp_b = tracer.start("y")
            assert tracer.open_depth == 2
            with tracer.use_stream("a"):
                tracer.finish(sp_a)
            with tracer.use_stream("b"):
                tracer.finish(sp_b)
            assert tracer.open_depth == 0


class TestMetricsThreadSafety:
    def test_concurrent_counter_increments_lose_no_updates(self):
        import threading

        reg = MetricsRegistry()
        n_threads, n_incs = 8, 5000

        def _hammer():
            counter = reg.counter("hits")
            hist = reg.histogram("obs")
            for i in range(n_incs):
                counter.inc()
                hist.observe(float(i % 7) + 0.5)

        threads = [threading.Thread(target=_hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == n_threads * n_incs
        assert snap["histograms"]["obs"]["count"] == n_threads * n_incs
        assert sum(
            snap["histograms"]["obs"]["buckets"].values()
        ) == n_threads * n_incs

    def test_concurrent_get_or_create_yields_one_instrument(self):
        import threading

        reg = MetricsRegistry()
        seen = []

        def _grab():
            seen.append(reg.counter("shared"))

        threads = [threading.Thread(target=_grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)


class TestChromeTraceLanes:
    def _fleet_like_tracer(self):
        with trace.capture() as tracer:
            with trace.mission_scope("m0:scan", group="fleet"):
                with trace.span("mission"):
                    pass
            with trace.mission_scope("m1:scan", group="fleet"):
                with trace.span("mission"):
                    pass
            with trace.mission_scope("fleet.gate", group="fleet"):
                with trace.span("fleet.gate", "fleet"):
                    pass
            with trace.span("campaign.execute", "campaign"):
                pass
        return tracer

    def test_schema_is_v2_and_validates(self):
        doc = chrome_trace(self._fleet_like_tracer())
        assert doc["otherData"]["schema"] == "repro-trace/2"
        assert validate_chrome_trace(doc) == []

    def test_validator_accepts_v1_documents(self):
        doc = chrome_trace(_traced_sample())
        doc["otherData"]["schema"] = "repro-trace/1"
        assert validate_chrome_trace(doc) == []

    def test_missions_map_to_distinct_lanes(self):
        tracer = self._fleet_like_tracer()
        doc = chrome_trace(tracer)
        lanes = doc["otherData"]["lanes"]
        assert set(lanes) == {"m0:scan", "m1:scan", "fleet.gate"}
        coords = {(v["pid"], v["tid"]) for v in lanes.values()}
        assert len(coords) == 3  # one swimlane each
        assert all(v["group"] == "fleet" for v in lanes.values())
        # The fleet group is its own process lane, separate from the
        # anonymous main-thread lane the campaign span landed on.
        campaign_event = next(
            e for e in doc["traceEvents"] if e["name"] == "campaign.execute"
        )
        assert (campaign_event["pid"], campaign_event["tid"]) not in coords

    def test_lane_metadata_events_name_threads(self):
        doc = chrome_trace(self._fleet_like_tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert {"m0:scan", "m1:scan", "fleet.gate"} <= thread_names
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        assert "fleet" in process_names

    def test_events_land_on_their_mission_lane(self):
        tracer = self._fleet_like_tracer()
        doc = chrome_trace(tracer)
        lanes = doc["otherData"]["lanes"]
        for event in doc["traceEvents"]:
            if event["ph"] != "X" or event["name"] != "mission":
                continue
            label = next(
                sp.mission for sp in tracer.spans
                if sp.name == "mission" and abs(
                    (sp.t0 - tracer.origin) * 1e6 - event["ts"]
                ) < 1.0
            )
            assert event["pid"] == lanes[label]["pid"]
            assert event["tid"] == lanes[label]["tid"]

    def test_spans_by_mission_splits_cleanly(self):
        from repro.observability import spans_by_mission, summarize_spans

        tracer = self._fleet_like_tracer()
        split = spans_by_mission(tracer.spans)
        assert set(split) == {"m0:scan", "m1:scan", "fleet.gate", None}
        assert set(summarize_spans(split["m0:scan"])) == {"mission"}
        assert set(summarize_spans(split[None])) == {"campaign.execute"}


# ----------------------------------------------------------------------
# Campaign fleet profiles (per-mission phases + per-group gate stats)
# ----------------------------------------------------------------------
class TestCampaignFleetProfiles:
    def _runs(self):
        return [
            RunSpec(
                "scanning", 4, 2.2, seed,
                workload_kwargs={"area_width": 40.0, "area_length": 24.0},
            )
            for seed in (1, 11)
        ]

    def test_fleet_profile_records(self):
        from repro.campaign.runner import execute_runs, execute_runs_fleet

        runs = self._runs()
        reference = execute_runs(runs)
        records = execute_runs_fleet(runs, profile=True, group="fleet-0")
        assert len(records) == 2
        for ref, record in zip(reference, records):
            profile = record["profile"]
            assert profile["schema"] == PROFILE_SCHEMA
            # Mission phases carry the sequential taxonomy.
            assert "mission" in profile["phases"]
            assert "mission/fly" in profile["phases"]
            fleet = profile["fleet"]
            assert fleet["group"] == "fleet-0"
            assert fleet["members"] == 2
            assert fleet["gate"]["ticks"] > 0
            assert len(fleet["gate"]["wait"]) == 2
            # Stripped of the profile/wall keys, records are identical
            # to sequential execution (the bit-identity contract).
            stripped = {
                k: v for k, v in record.items()
                if k not in ("profile", "wall_time_s")
            }
            ref_stripped = {
                k: v for k, v in ref.items() if k != "wall_time_s"
            }
            assert stripped == ref_stripped
        assert trace.get_tracer() is None

    def test_run_campaign_fleet_profile_end_to_end(self):
        from repro.campaign import CampaignSpec, run_campaign

        spec = CampaignSpec(
            workloads=["scanning"],
            grid=[(4, 2.2)],
            seeds=[1, 11],
            workload_kwargs={
                "scanning": {"area_width": 40.0, "area_length": 24.0}
            },
        )
        report = run_campaign(spec, profile=True, fleet_batch=2)
        assert report.failed == 0
        assert all("profile" in r for r in report.records)
        groups = {r["profile"]["fleet"]["group"] for r in report.records}
        assert groups == {"fleet-0"}

    def test_run_campaign_fleet_under_outer_tracer_traces_missions(self):
        """The `campaign timeline` path: an installed tracer collects
        the whole fleet campaign with one lane per mission."""
        from repro.campaign import CampaignSpec, run_campaign

        spec = CampaignSpec(
            workloads=["scanning"],
            grid=[(4, 2.2)],
            seeds=[1, 11],
            workload_kwargs={
                "scanning": {"area_width": 40.0, "area_length": 24.0}
            },
        )
        with trace.capture() as tracer:
            report = run_campaign(spec, fleet_batch=2)
        assert report.failed == 0
        doc = chrome_trace(tracer, process_name="repro-campaign")
        assert validate_chrome_trace(doc) == []
        lanes = doc["otherData"]["lanes"]
        mission_lanes = {
            label for label, lane in lanes.items()
            if lane["group"] == "fleet-0" and not label.endswith(".gate")
        }
        assert len(mission_lanes) == 2
        assert any(label.endswith(".gate") for label in lanes)
