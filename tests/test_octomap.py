"""Tests for the OctoMap occupancy octree."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perception.octomap import (
    LOG_ODDS_HIT,
    LOG_ODDS_MAX,
    LOG_ODDS_MIN,
    LOG_ODDS_MISS,
    OctoMap,
    log_odds,
    probability,
)
from repro.perception.point_cloud import PointCloud
from repro.world.geometry import AABB, vec


class TestLogOdds:
    def test_round_trip(self):
        for p in (0.1, 0.5, 0.9):
            assert probability(log_odds(p)) == pytest.approx(p)

    def test_probability_of_zero_log_odds(self):
        assert probability(0.0) == pytest.approx(0.5)

    def test_log_odds_rejects_boundaries(self):
        with pytest.raises(ValueError):
            log_odds(0.0)
        with pytest.raises(ValueError):
            log_odds(1.0)

    @given(st.floats(-10, 10, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_probability_monotone(self, x):
        assert probability(x) < probability(x + 0.5)


class TestVoxelKeys:
    def test_key_for_origin_cell(self):
        om = OctoMap(resolution=0.5)
        assert om.key_for((0.1, 0.1, 0.1)) == (0, 0, 0)
        assert om.key_for((-0.1, 0.6, 1.2)) == (-1, 1, 2)

    def test_center_round_trip(self):
        om = OctoMap(resolution=0.25)
        key = (3, -2, 7)
        assert om.key_for(om.center_of(key)) == key

    def test_voxel_box_size(self):
        om = OctoMap(resolution=0.5)
        box = om.voxel_box((0, 0, 0))
        assert np.allclose(box.size, 0.5)

    def test_rejects_nonpositive_resolution(self):
        with pytest.raises(ValueError):
            OctoMap(resolution=0.0)

    @given(
        x=st.floats(-50, 50, allow_nan=False),
        y=st.floats(-50, 50, allow_nan=False),
        z=st.floats(-50, 50, allow_nan=False),
        res=st.sampled_from([0.15, 0.25, 0.5, 0.8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_point_is_inside_its_voxel(self, x, y, z, res):
        om = OctoMap(resolution=res)
        key = om.key_for((x, y, z))
        box = om.voxel_box(key)
        assert box.contains(vec(x, y, z))


class TestOccupancyUpdates:
    def test_unknown_by_default(self):
        om = OctoMap(resolution=0.5)
        assert om.is_unknown((1, 1, 1))
        assert om.occupancy_at((1, 1, 1)) is None
        assert not om.is_occupied((1, 1, 1))
        assert not om.is_free((1, 1, 1))

    def test_mark_occupied(self):
        om = OctoMap(resolution=0.5)
        om.mark_occupied((1, 1, 1))
        assert om.is_occupied((1, 1, 1))
        assert om.occupancy_at((1, 1, 1)) > 0.5

    def test_mark_free(self):
        om = OctoMap(resolution=0.5)
        om.mark_free((1, 1, 1))
        assert om.is_free((1, 1, 1))
        assert om.occupancy_at((1, 1, 1)) < 0.5

    def test_repeated_hits_clamp(self):
        om = OctoMap(resolution=0.5)
        for _ in range(100):
            om.mark_occupied((0, 0, 0))
        assert om.log_odds_at((0, 0, 0)) == pytest.approx(LOG_ODDS_MAX)

    def test_repeated_misses_clamp(self):
        om = OctoMap(resolution=0.5)
        for _ in range(100):
            om.mark_free((0, 0, 0))
        assert om.log_odds_at((0, 0, 0)) == pytest.approx(LOG_ODDS_MIN)

    def test_hit_then_misses_flip_state(self):
        om = OctoMap(resolution=0.5)
        om.mark_occupied((0, 0, 0))
        # LOG_ODDS_HIT=0.85 needs 3 misses of -0.4 to go below 0.
        for _ in range(3):
            om.mark_free((0, 0, 0))
        assert om.is_free((0, 0, 0))

    def test_updates_outside_bounds_ignored(self):
        om = OctoMap(resolution=0.5, bounds=AABB(vec(0, 0, 0), vec(5, 5, 5)))
        om.mark_occupied((10, 10, 10))
        assert om.is_unknown((10, 10, 10))
        assert len(om) == 0


class TestRayInsertion:
    def test_ray_keys_straight_line(self):
        om = OctoMap(resolution=1.0)
        keys = om.ray_keys(vec(0.5, 0.5, 0.5), vec(4.5, 0.5, 0.5))
        assert keys == [(0, 0, 0), (1, 0, 0), (2, 0, 0), (3, 0, 0)]

    def test_ray_keys_exclude_endpoint_voxel(self):
        om = OctoMap(resolution=1.0)
        keys = om.ray_keys(vec(0.5, 0.5, 0.5), vec(2.5, 0.5, 0.5))
        assert (2, 0, 0) not in keys

    def test_ray_keys_degenerate(self):
        om = OctoMap(resolution=1.0)
        assert om.ray_keys(vec(1, 1, 1), vec(1, 1, 1)) == []

    def test_insert_ray_marks_free_and_occupied(self):
        om = OctoMap(resolution=1.0)
        om.insert_ray(vec(0.5, 0.5, 0.5), vec(3.5, 0.5, 0.5), hit=True)
        assert om.is_free((1.5, 0.5, 0.5))
        assert om.is_occupied((3.5, 0.5, 0.5))

    def test_insert_ray_miss_carves_only(self):
        om = OctoMap(resolution=1.0)
        om.insert_ray(vec(0.5, 0.5, 0.5), vec(3.5, 0.5, 0.5), hit=False)
        assert om.is_free((1.5, 0.5, 0.5))
        assert not om.is_occupied((3.5, 0.5, 0.5))

    def test_diagonal_ray_connected(self):
        """DDA traversal must produce face-adjacent voxel steps."""
        om = OctoMap(resolution=0.5)
        keys = om.ray_keys(vec(0.1, 0.1, 0.1), vec(4.9, 3.2, 2.7))
        for a, b in zip(keys[:-1], keys[1:]):
            manhattan = sum(abs(x - y) for x, y in zip(a, b))
            assert manhattan == 1

    @given(
        ex=st.floats(-8, 8), ey=st.floats(-8, 8), ez=st.floats(-8, 8)
    )
    @settings(max_examples=40, deadline=None)
    def test_ray_endpoint_occupied_property(self, ex, ey, ez):
        if math.hypot(ex, ey, ez) < 0.5:
            return
        om = OctoMap(resolution=0.5)
        origin = vec(0.1, 0.1, 0.1)
        end = vec(ex, ey, ez)
        om.insert_ray(origin, end, hit=True)
        assert om.is_occupied(end)


class TestScanInsertion:
    def _scan(self):
        hits = np.array([[3.2, 0.2, 0.2], [3.2, 0.7, 0.2], [3.2, 0.2, 0.7]])
        misses = np.array([[0.2, 5.0, 0.2]])
        return PointCloud(origin=vec(0.2, 0.2, 0.2), hits=hits, misses=misses)

    def test_insert_scan_marks_all_endpoints(self):
        om = OctoMap(resolution=0.5)
        n = om.insert_scan(self._scan(), carve_rays=2)
        assert n == 3
        for p in self._scan().hits:
            assert om.is_occupied(p)

    def test_insert_scan_carves_free_space(self):
        om = OctoMap(resolution=0.5)
        om.insert_scan(self._scan(), carve_rays=10)
        assert om.is_free((1.7, 0.2, 0.2))

    def test_insert_scan_zero_carve(self):
        om = OctoMap(resolution=0.5)
        om.insert_scan(self._scan(), carve_rays=0)
        assert om.is_unknown((1.7, 0.2, 0.2))

    def test_insert_point_cloud_endpoint_only(self):
        om = OctoMap(resolution=0.5)
        om.insert_point_cloud(self._scan(), endpoint_only=True)
        assert om.is_occupied((3.2, 0.2, 0.2))
        assert om.is_unknown((1.7, 0.2, 0.2))


class TestRegionQueries:
    def test_region_occupied(self):
        om = OctoMap(resolution=0.5)
        om.mark_occupied((2.2, 2.2, 2.2))
        assert om.region_occupied(AABB(vec(2, 2, 2), vec(2.4, 2.4, 2.4)))
        assert not om.region_occupied(AABB(vec(5, 5, 5), vec(6, 6, 6)))

    def test_region_occupied_with_margin(self):
        om = OctoMap(resolution=0.5)
        om.mark_occupied((2.2, 2.2, 2.2))
        probe = AABB(vec(2.8, 2.2, 2.2), vec(3.0, 2.4, 2.4))
        assert not om.region_occupied(probe)
        assert om.region_occupied(probe, margin=0.5)

    def test_unknown_fraction_all_unknown(self):
        om = OctoMap(resolution=0.5)
        assert om.region_unknown_fraction(AABB(vec(0, 0, 0), vec(1, 1, 1))) == 1.0

    def test_unknown_fraction_decreases_with_updates(self):
        om = OctoMap(resolution=0.5)
        box = AABB(vec(0, 0, 0), vec(1, 1, 1))
        before = om.region_unknown_fraction(box)
        om.mark_free((0.2, 0.2, 0.2))
        after = om.region_unknown_fraction(box)
        assert after < before

    def test_coverage_fraction(self):
        bounds = AABB(vec(0, 0, 0), vec(2, 2, 2))
        om = OctoMap(resolution=1.0, bounds=bounds)
        assert om.coverage_fraction() == 0.0
        for i in range(2):
            for j in range(2):
                for k in range(2):
                    om.mark_free((i + 0.5, j + 0.5, k + 0.5))
        assert om.coverage_fraction() == pytest.approx(1.0)

    def test_coverage_needs_region(self):
        om = OctoMap(resolution=0.5)
        with pytest.raises(ValueError):
            om.coverage_fraction()

    def test_occupied_centers(self):
        om = OctoMap(resolution=0.5)
        om.mark_occupied((0.2, 0.2, 0.2))
        om.mark_free((5, 5, 5))
        centers = om.occupied_centers()
        assert centers.shape == (1, 3)
        assert np.allclose(centers[0], [0.25, 0.25, 0.25])


class TestResolutionRebuild:
    def test_rebuild_coarser_inflates_obstacles(self):
        fine = OctoMap(resolution=0.15)
        fine.mark_occupied((0.05, 0.05, 0.05))
        coarse = fine.rebuilt_at_resolution(0.8)
        assert coarse.is_occupied((0.4, 0.4, 0.4))  # whole coarse voxel

    def test_rebuild_occupied_dominates_free(self):
        fine = OctoMap(resolution=0.15)
        fine.mark_occupied((0.05, 0.05, 0.05))
        for _ in range(5):
            fine.mark_free((0.35, 0.35, 0.35))
        coarse = fine.rebuilt_at_resolution(0.8)
        # Max-pooling: occupied fine voxel wins over free siblings.
        assert coarse.is_occupied((0.4, 0.4, 0.4))

    def test_rebuild_preserves_bounds(self):
        bounds = AABB(vec(0, 0, 0), vec(5, 5, 5))
        fine = OctoMap(resolution=0.15, bounds=bounds)
        coarse = fine.rebuilt_at_resolution(0.5)
        assert coarse.bounds is bounds

    def test_memory_shrinks_at_coarser_resolution(self):
        fine = OctoMap(resolution=0.15)
        rng = np.random.default_rng(0)
        for p in rng.uniform(0, 4, size=(300, 3)):
            fine.mark_occupied(p)
        coarse = fine.rebuilt_at_resolution(0.8)
        assert coarse.memory_cells() < fine.memory_cells()
