"""Tests for flight-log export and world serialization."""

import io
import json

import numpy as np
import pytest

from repro.analysis.flight_log import (
    load_mission,
    mission_document,
    samples_to_rows,
    write_csv,
    write_json,
)
from repro.core.qof import QofRecorder
from repro.dynamics.state import VehicleState
from repro.world import (
    campus_world,
    empty_world,
    make_box_obstacle,
    make_environment,
    make_person,
    urban_world,
    vec,
)
from repro.world.generator import ENVIRONMENTS
from repro.world.serialization import (
    load_world,
    save_world,
    world_from_dict,
    world_to_dict,
)


def _recorder(n=20):
    rec = QofRecorder()
    for i in range(n):
        state = VehicleState(
            position=vec(i * 0.5, 0, 2), velocity=vec(1, 0, 0), time=i * 0.1
        )
        rec.record(state, 300.0, 10.0, 0.1, airborne=True)
    return rec


class TestFlightLog:
    def test_rows_shape(self):
        rows = samples_to_rows(_recorder(10))
        assert len(rows) == 10
        assert rows[0]["total_power_w"] == pytest.approx(310.0)
        assert rows[3]["x_m"] == pytest.approx(1.5)

    def test_csv_round_trip(self):
        stream = io.StringIO()
        n = write_csv(_recorder(20), stream, decimate=2)
        assert n == 10
        stream.seek(0)
        lines = stream.read().strip().splitlines()
        assert len(lines) == 11  # header + rows
        assert lines[0].startswith("time_s,")

    def test_csv_decimate_validation(self):
        with pytest.raises(ValueError):
            write_csv(_recorder(), io.StringIO(), decimate=0)

    def test_csv_file_output(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(_recorder(5), str(path))
        assert path.exists()
        assert "rotor_power_w" in path.read_text()

    def test_json_document_round_trip(self, tmp_path):
        rec = _recorder(30)
        report = rec.report(True, battery_remaining_percent=91.0)
        path = tmp_path / "mission.json"
        write_json(report, str(path), recorder=rec, decimate=5,
                   metadata={"workload": "scanning"})
        doc = load_mission(str(path))
        assert doc["success"] is True
        assert doc["battery_remaining_percent"] == 91.0
        assert doc["metadata"]["workload"] == "scanning"
        assert len(doc["trace"]) == 6

    def test_document_without_trace(self):
        rec = _recorder(5)
        report = rec.report(False, 50.0, failure_reason="collision")
        doc = mission_document(report)
        assert "trace" not in doc
        assert doc["failure_reason"] == "collision"


class TestWorldSerialization:
    def test_static_round_trip(self):
        world = empty_world((40, 40, 10), name="test-world")
        world.add(make_box_obstacle((5, 0, 2), (2, 2, 4), kind="pillar"))
        clone = world_from_dict(world_to_dict(world))
        assert clone.name == "test-world"
        assert np.allclose(clone.bounds.lo, world.bounds.lo)
        assert len(clone.obstacles) == 1
        assert clone.obstacles[0].kind == "pillar"
        assert np.allclose(clone.obstacles[0].box.lo, world.obstacles[0].box.lo)

    def test_dynamic_obstacle_round_trip(self):
        world = empty_world((40, 40, 10))
        person = make_person(
            (0, 0, 0.9), waypoints=[(0, 0, 0.9), (10, 0, 0.9)], speed=1.5
        )
        world.add(person)
        clone = world_from_dict(world_to_dict(world))
        restored = clone.dynamic_obstacles[0]
        assert restored.speed == 1.5
        assert np.allclose(
            restored.position_at(4.0), person.position_at(4.0)
        )

    def test_generated_worlds_round_trip(self):
        for factory in (urban_world, campus_world):
            world = factory(seed=2)
            clone = world_from_dict(world_to_dict(world))
            assert len(clone.obstacles) == len(world.obstacles)
            assert clone.density() == pytest.approx(world.density())

    @pytest.mark.parametrize("name", sorted(ENVIRONMENTS))
    def test_every_environment_round_trips_exactly(self, name):
        """world -> dict -> world -> dict is the identity for all six
        generator families (names, kinds, boxes, patrol loops, speeds)."""
        world = make_environment(name, seed=4)
        data = world_to_dict(world)
        clone = world_from_dict(data)
        assert world_to_dict(clone) == data
        assert clone.name == world.name
        assert len(clone.dynamic_obstacles) == len(world.dynamic_obstacles)
        # JSON-encodable end to end (what save_world actually writes).
        json.dumps(data)

    def test_file_round_trip(self, tmp_path):
        world = urban_world(seed=1)
        path = tmp_path / "city.json"
        save_world(world, str(path))
        clone = load_world(str(path))
        assert len(clone.obstacles) == len(world.obstacles)

    def test_queries_equivalent_after_round_trip(self):
        world = urban_world(seed=1)
        clone = world_from_dict(world_to_dict(world))
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = rng.uniform(world.bounds.lo, world.bounds.hi)
            assert world.is_occupied(p) == clone.is_occupied(p)

    def test_unknown_version_rejected(self):
        data = world_to_dict(empty_world((10, 10, 10)))
        data["format_version"] = 99
        with pytest.raises(ValueError):
            world_from_dict(data)

    def test_stream_io(self):
        world = empty_world((10, 10, 5), name="streamed")
        buf = io.StringIO()
        save_world(world, buf)
        buf.seek(0)
        clone = load_world(buf)
        assert clone.name == "streamed"
