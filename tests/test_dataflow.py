"""Tests for the Fig. 7 dataflow graphs on the middleware substrate."""

import pytest

from repro.compute import ComputeScheduler, JETSON_TX2, KernelModel, PlatformConfig
from repro.core.dataflow import (
    DATAFLOWS,
    KernelNode,
    SensorNode,
    build_dataflow,
    spin_dataflow,
)
from repro.middleware import NodeGraph, SimClock


def _graph(workload=None, cores=4, freq=2.2):
    clock = SimClock()
    scheduler = ComputeScheduler(
        config=PlatformConfig(JETSON_TX2, cores, freq),
        kernel_model=KernelModel(workload=workload),
    )
    return NodeGraph(clock=clock, scheduler=scheduler)


class TestDataflowConstruction:
    def test_all_five_dataflows_build(self):
        for name in DATAFLOWS:
            graph = _graph(workload=name)
            nodes = build_dataflow(name, graph)
            assert len(nodes) >= 4
            assert len(graph.nodes) == len(nodes)

    def test_unknown_dataflow_raises(self):
        with pytest.raises(KeyError):
            build_dataflow("laundry", _graph())

    def test_package_delivery_topology(self):
        """Fig. 7c wiring: depth image feeds point cloud and SLAM; the
        octomap feeds both collision checking and planning."""
        graph = _graph(workload="package_delivery")
        build_dataflow("package_delivery", graph)
        assert "image_depth" in graph.topics
        assert graph.topics.topic("image_depth").subscriber_count >= 2
        assert graph.topics.topic("octomap").subscriber_count >= 2


class TestDataflowExecution:
    def test_scanning_pipeline_flows_end_to_end(self):
        graph = _graph(workload="scanning")
        nodes = build_dataflow("scanning", graph)
        stats = spin_dataflow(graph, nodes, duration_s=3.0)
        assert stats.published["gps"] > 20
        assert stats.processed["path_tracker"] > 0

    def test_mapping_pipeline_produces_maps(self):
        graph = _graph(workload="mapping")
        nodes = build_dataflow("mapping", graph)
        stats = spin_dataflow(graph, nodes, duration_s=10.0)
        assert stats.processed["point_cloud"] > 0
        assert stats.processed["octomap_generator"] > 0
        # Frontier exploration is the 2.6 s bottleneck: far fewer runs.
        assert (
            stats.processed["motion_planner"]
            < stats.processed["point_cloud"]
        )

    def test_detection_drops_frames_on_slow_platform(self):
        """The SAR missed-frames effect: the 30 Hz camera outruns the
        detector, and a slower platform drops more frames."""

        def dropped(cores, freq):
            graph = _graph(workload="aerial_photography", cores=cores,
                           freq=freq)
            nodes = build_dataflow("aerial_photography", graph)
            stats = spin_dataflow(graph, nodes, duration_s=8.0)
            return stats.dropped["detector"]

        assert dropped(2, 0.8) > dropped(4, 2.2) * 0.9
        assert dropped(2, 0.8) > 0

    def test_core_contention_shapes_throughput(self):
        """More cores let concurrent nodes process more frames overall."""

        def throughput(cores):
            graph = _graph(workload="search_rescue", cores=cores, freq=2.2)
            nodes = build_dataflow("search_rescue", graph)
            stats = spin_dataflow(graph, nodes, duration_s=12.0)
            return sum(stats.processed.values())

        assert throughput(4) >= throughput(2)

    def test_sensor_rate_respected(self):
        graph = _graph(workload="scanning")
        node = SensorNode("cam", "frames", rate_hz=5.0)
        graph.add_node(node)
        for _ in range(int(4.0 / 0.01)):
            graph.spin_once(0.01)
        assert node.frames_published == pytest.approx(20, abs=2)
