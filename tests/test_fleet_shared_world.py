"""Shared-world fleet tests: one city, N drones, airspace conflicts.

Pins the shared-world contract end to end:

* ``shared_city`` member routes — deterministic, lane-separated,
  altitude-staggered per-member start/goal assignments.
* The cross-member sensing kernels (``pairwise_separations``,
  ``resolve_conflicts``) against their scalar twins, plus permutation
  invariance of the priority rule.
* The conflicts gate phase (:func:`repro.fleet.shared_world
  .gate_conflicts`) on synthetic fleets: priority holds, edge-triggered
  near misses, drone-drone collisions, grounded-member exemptions.
* Peer sensing injected into the collision checker and clearance
  queries.
* End-to-end: a shared-world fleet of one is bit-identical to the same
  mission run sequentially; a fleet of two is seed-deterministic,
  member-permutation-invariant, and keeps lane separation (no near
  misses) at difficulty 0.
* The :meth:`FleetCoordinator.retire` id-reuse regression: every
  id-keyed record (order, label, pending error) is dropped with the
  sim, and the constants cache pins its sims alive.
"""

import math
from dataclasses import asdict

import numpy as np
import pytest

from repro.core.api import (
    available_workloads,
    make_simulation,
    run_workload,
    validate_workload_kwargs,
)
from repro.fleet import (
    FleetCoordinator,
    FleetMission,
    SharedWorldPolicy,
    SharedWorldState,
    gate_conflicts,
    pairwise_separations,
    pairwise_separations_scalar,
    resolve_conflicts,
    resolve_conflicts_scalar,
    run_workloads_fleet,
)
from repro.fleet.kernels import FleetBatchArrays
from repro.perception.octomap import OctoMap
from repro.planning.collision import CollisionChecker
from repro.scenarios import ScenarioSpec, member_route, supports_member_routes

# Tiny city: 3 lanes 18 m apart, ~1.5 s host per delivery mission.
TINY_CITY = {
    "family": "shared_city",
    "difficulty": 0.0,
    "seed": 3,
    "knobs": {"blocks": 2, "block_size": 10.0, "street_width": 8.0},
}


def _tiny_spec(**overrides):
    payload = dict(TINY_CITY)
    payload["knobs"] = {**TINY_CITY["knobs"], **overrides.pop("knobs", {})}
    payload.update(overrides)
    return ScenarioSpec.coerce(payload)


# ----------------------------------------------------------------------
# Member routes
# ----------------------------------------------------------------------
class TestSharedCityRoutes:
    def test_supports_member_routes(self):
        assert supports_member_routes("shared_city")
        assert not supports_member_routes("urban")
        assert not supports_member_routes("forest")

    def test_route_deterministic(self):
        spec = _tiny_spec()
        for member in range(4):
            a = member_route(spec, member)
            b = member_route(spec, member)
            assert np.array_equal(a["start"], b["start"])
            assert np.array_equal(a["goal"], b["goal"])
            assert a["altitude_m"] == b["altitude_m"]

    def test_unsupported_family_routes_to_none(self):
        urban = ScenarioSpec.coerce("urban:0.5:3")
        assert member_route(urban, 0) is None

    def test_parallel_lanes_default(self):
        """Default routes are parallel lanes: goal lane == start lane,
        and adjacent members launch one street pitch apart laterally."""
        spec = _tiny_spec()
        pitch = 10.0 + 8.0  # block_size + street_width
        routes = [member_route(spec, m) for m in range(3)]
        for route in routes:
            assert route["start"][0] == route["goal"][0]  # same lane
            assert route["start"][1] < route["goal"][1]  # south -> north
        xs = sorted(r["start"][0] for r in routes)
        assert np.allclose(np.diff(xs), pitch)

    def test_cross_traffic_mirrors_goal_lanes(self):
        spec = _tiny_spec(knobs={"cross_traffic": 1.0})
        lanes = 3  # blocks + 1
        for member in range(lanes):
            route = member_route(spec, member)
            mirror = member_route(spec, lanes - 1 - member)
            assert route["goal"][0] == mirror["start"][0]

    def test_altitude_slots_stagger(self):
        spec = _tiny_spec(knobs={"altitude_slots": 2, "altitude_step_m": 2.0,
                                 "route_altitude_m": 3.0})
        assert member_route(spec, 0)["altitude_m"] == 3.0
        assert member_route(spec, 1)["altitude_m"] == 5.0
        assert member_route(spec, 2)["altitude_m"] == 3.0  # wraps

    def test_member_kwarg_accepted_everywhere(self):
        for name in available_workloads():
            validate_workload_kwargs(name, {"member": 0})


# ----------------------------------------------------------------------
# Kernels vs scalar twins
# ----------------------------------------------------------------------
class TestConflictKernels:
    def test_pairwise_separations_matches_scalar(self):
        rng = np.random.default_rng(11)
        positions = rng.uniform(-50.0, 50.0, size=(7, 3))
        batched = pairwise_separations(positions)
        scalar = pairwise_separations_scalar(positions)
        assert np.array_equal(batched, scalar)  # bit-identical
        assert np.all(np.isinf(np.diag(batched)))

    def test_pairwise_separations_empty(self):
        assert pairwise_separations(np.zeros((0, 3))).shape == (0, 0)

    def test_resolve_conflicts_matches_scalar(self):
        rng = np.random.default_rng(5)
        positions = rng.uniform(-4.0, 4.0, size=(6, 3))
        seps = pairwise_separations(positions)
        priorities = np.arange(6)
        for radius in (0.5, 3.0, 20.0):
            yields, min_seps = resolve_conflicts(seps, priorities, radius)
            yields_s, min_seps_s = resolve_conflicts_scalar(
                seps, priorities, radius
            )
            assert np.array_equal(yields, yields_s)
            assert np.array_equal(min_seps, min_seps_s)

    def test_lower_priority_yields(self):
        positions = np.array([[0.0, 0.0, 3.0], [2.0, 0.0, 3.0]])
        seps = pairwise_separations(positions)
        yields, min_seps = resolve_conflicts(seps, np.array([0, 1]), 5.0)
        assert list(yields) == [False, True]  # member 1 gives way
        assert np.allclose(min_seps, 2.0)

    def test_permutation_invariance(self):
        rng = np.random.default_rng(23)
        positions = rng.uniform(-3.0, 3.0, size=(5, 3))
        priorities = np.array([4, 0, 3, 1, 2])
        yields, min_seps = resolve_conflicts(
            pairwise_separations(positions), priorities, 4.0
        )
        perm = rng.permutation(5)
        yields_p, min_seps_p = resolve_conflicts(
            pairwise_separations(positions[perm]), priorities[perm], 4.0
        )
        assert np.array_equal(yields[perm], yields_p)
        assert np.array_equal(min_seps[perm], min_seps_p)


# ----------------------------------------------------------------------
# The conflicts gate phase on synthetic fleets
# ----------------------------------------------------------------------
class _StubVehicle:
    def __init__(self):
        self.commands = []

    def command_velocity(self, velocity, yaw=None):
        self.commands.append(np.asarray(velocity, dtype=float).copy())


class _StubGroundTruth:
    drone_radius = 0.325


class _StubState:
    def __init__(self, position):
        self.position = np.asarray(position, dtype=float)


class _StubSim:
    """Just enough Simulation surface for the conflicts phase."""

    def __init__(self, position):
        self.state = _StubState(position)
        self.vehicle = _StubVehicle()
        self.ground_truth = _StubGroundTruth()
        self.collisions = 0
        self.failure_reason = None

    def fail(self, reason):
        if self.failure_reason is None:
            self.failure_reason = reason


def _registered_fleet(positions, policy=None):
    state = SharedWorldState(policy)
    sims = [_StubSim(p) for p in positions]
    for member, sim in enumerate(sims):
        state.register(sim, member)
    return state, sims


class TestGateConflicts:
    def test_priority_hold(self):
        state, sims = _registered_fleet(
            [[0.0, 0.0, 3.0], [3.0, 0.0, 3.0]]
        )
        gate_conflicts(state, sims)
        assert sims[0].vehicle.commands == []  # priority member flies on
        (cmd,) = sims[1].vehicle.commands  # yielding member holds + climbs
        assert cmd[0] == 0.0 and cmd[1] == 0.0
        assert cmd[2] == state.policy.hold_climb_ms
        assert state.conflict_holds == 1
        assert state.metrics[1]["conflict_holds"] == 1.0
        assert state.metrics[0]["conflict_holds"] == 0.0
        assert state.min_separation_m == 3.0

    def test_near_miss_edge_triggered(self):
        state, sims = _registered_fleet(
            [[0.0, 0.0, 3.0], [2.0, 0.0, 3.0]]
        )
        gate_conflicts(state, sims)
        gate_conflicts(state, sims)  # still inside: same incursion
        assert state.near_misses == 1
        sims[1].state.position = np.array([9.0, 0.0, 3.0])
        gate_conflicts(state, sims)  # separated again
        sims[1].state.position = np.array([2.0, 0.0, 3.0])
        gate_conflicts(state, sims)  # re-entry: a second near miss
        assert state.near_misses == 2
        assert state.metrics[0]["near_misses"] == 2.0
        assert state.metrics[1]["near_misses"] == 2.0

    def test_drone_collision_fails_both(self):
        state, sims = _registered_fleet(
            [[0.0, 0.0, 3.0], [0.3, 0.0, 3.0]]
        )
        gate_conflicts(state, sims)
        for sim in sims:
            assert sim.failure_reason == "drone_collision"
            assert sim.collisions == 1
        assert state.drone_collisions == 2  # both sides of the pair
        # A crashed pair holds no one: collision preempts the hold rule.
        assert sims[1].vehicle.commands == []

    def test_grounded_members_exempt(self):
        state, sims = _registered_fleet(
            [[0.0, 0.0, 3.0], [0.5, 0.0, 0.0]]  # second still on the pad
        )
        gate_conflicts(state, sims)
        assert state.near_misses == 0
        assert all(s.failure_reason is None for s in sims)
        assert math.isinf(state.min_separation_m)

    def test_single_member_inert(self):
        state, sims = _registered_fleet([[0.0, 0.0, 3.0]])
        gate_conflicts(state, sims)
        assert math.isinf(state.min_separation_m)

    def test_unregistered_sims_ignored(self):
        state, sims = _registered_fleet([[0.0, 0.0, 3.0]])
        stranger = _StubSim([1.0, 0.0, 3.0])  # never registered
        gate_conflicts(state, sims + [stranger])
        assert math.isinf(state.min_separation_m)


# ----------------------------------------------------------------------
# Peer sensing: clearance and collision-checker injection
# ----------------------------------------------------------------------
class TestPeerSensing:
    def test_clearance_along_sees_peer(self):
        state, sims = _registered_fleet(
            [[0.0, 0.0, 3.0], [4.0, 0.0, 3.0]]
        )
        ahead = state.clearance_along(sims[0], np.array([1.0, 0.0, 0.0]))
        radius = state.policy.peer_radius_m + sims[0].ground_truth.drone_radius
        assert ahead == pytest.approx(4.0 - radius)
        # Looking away from the peer: unobstructed.
        behind = state.clearance_along(sims[0], np.array([-1.0, 0.0, 0.0]))
        assert behind == 8.0

    def test_clearance_ignores_grounded_peer(self):
        state, sims = _registered_fleet(
            [[0.0, 0.0, 3.0], [4.0, 0.0, 0.0]]
        )
        assert state.clearance_along(sims[0], np.array([1.0, 0.0, 0.0])) == 8.0

    def test_checker_peer_block_twin_identity(self):
        state, sims = _registered_fleet(
            [[0.0, 0.0, 3.0], [4.0, 0.0, 3.0]]
        )
        checker = CollisionChecker(OctoMap(resolution=0.5))

        class _Pipeline:
            sim = sims[0]

            def __init__(self, checker):
                self.checker = checker

        state.adopt(_Pipeline(checker))
        points = np.array(
            [[4.0, 0.0, 3.0],  # on the peer
             [4.4, 0.0, 3.0],  # inside its bubble
             [9.0, 0.0, 3.0],  # clear
             [0.0, 0.0, 3.0]]  # own position: never self-blocked
        )
        batched = checker.points_free(points)
        scalar = checker.points_free_scalar(points)
        assert np.array_equal(batched, scalar)
        assert list(batched) == [False, False, True, True]

    def test_checker_unchanged_without_peers(self):
        state, sims = _registered_fleet([[0.0, 0.0, 3.0]])
        checker = CollisionChecker(OctoMap(resolution=0.5))

        class _Pipeline:
            sim = sims[0]

            def __init__(self, checker):
                self.checker = checker

        state.adopt(_Pipeline(checker))
        points = np.array([[4.0, 0.0, 3.0], [0.0, 0.0, 3.0]])
        assert np.all(checker.points_free(points))


# ----------------------------------------------------------------------
# Coordinator bookkeeping: the retire() id-reuse regression
# ----------------------------------------------------------------------
class TestCoordinatorRetire:
    def test_retire_drops_every_id_keyed_record(self):
        coordinator = FleetCoordinator(expected=1)
        coordinator.set_thread_label("m0:test")
        sim = _StubSim([0.0, 0.0, 0.0])
        coordinator.enroll(sim)
        # A pending error nobody collected (mission died mid-gate).
        coordinator._errors[id(sim)] = RuntimeError("stale")
        assert coordinator._labels[id(sim)] == "m0:test"
        coordinator.retire()
        # Regression: _order was popped but _labels/_errors leaked, so a
        # later sim allocated at the same address inherited this label
        # and re-raised this error.
        assert coordinator._order == {}
        assert coordinator._labels == {}
        assert coordinator._errors == {}
        assert coordinator._thread_labels == {}
        assert sim._fleet is None

    def test_retire_unregisters_shared_member(self):
        state = SharedWorldState()
        coordinator = FleetCoordinator(expected=1, shared=state)
        coordinator.set_thread_member(4)
        sim = _StubSim([0.0, 0.0, 0.0])
        coordinator.enroll(sim)
        assert state.member_of(sim) == 4
        coordinator.retire()
        assert state.member_of(sim) is None
        # The metrics record survives retirement for report injection.
        assert 4 in state.metrics

    def test_batch_arrays_pin_sims_alive(self):
        from repro.core.workloads import WORKLOADS

        workload = WORKLOADS["scanning"](seed=0)
        sim = make_simulation(workload, cores=2, frequency_ghz=0.8, seed=0)
        arrays = FleetBatchArrays([sim], [sim.config.dt])
        # The id-tuple cache key is only sound while the ids cannot be
        # recycled — the cache must hold strong references.
        assert arrays.sims[0] is sim
        assert arrays.key == (id(sim),)


# ----------------------------------------------------------------------
# End-to-end: shared-world fleets over the tiny city
# ----------------------------------------------------------------------
def _tiny_mission(member, seed):
    return FleetMission(
        workload="package_delivery",
        seed=seed,
        workload_kwargs={"scenario": dict(TINY_CITY), "member": member},
    )


def _report_dicts(results):
    return [asdict(r.report) for r in results]


@pytest.fixture(scope="module")
def duo_flight():
    """One 2-drone shared-world flight, reused across assertions."""
    state = SharedWorldState()
    results, errors = run_workloads_fleet(
        [_tiny_mission(0, 10), _tiny_mission(1, 11)], shared_world=state
    )
    assert errors == [None, None]
    return state, results


class TestSharedWorldEndToEnd:
    def test_fleet_of_one_bit_identical_to_sequential(self):
        kwargs = {"scenario": dict(TINY_CITY), "member": 0}
        sequential = run_workload(
            "package_delivery", seed=10, workload_kwargs=dict(kwargs)
        )
        results, errors = run_workloads_fleet(
            [FleetMission(workload="package_delivery", seed=10,
                          workload_kwargs=dict(kwargs))],
            shared_world=True,
        )
        assert errors == [None]
        assert asdict(results[0].report) == asdict(sequential.report)

    def test_duo_succeeds_with_lane_separation(self, duo_flight):
        state, results = duo_flight
        assert all(r.report.success for r in results)
        # Difficulty 0, parallel lanes: separation never dips below the
        # conflict radius, so no near misses and no holds.
        assert state.min_separation_m >= state.policy.conflict_radius_m
        assert state.near_misses == 0
        assert state.conflict_holds == 0
        assert state.drone_collisions == 0

    def test_duo_reports_airspace_extras(self, duo_flight):
        state, results = duo_flight
        for result in results:
            extra = result.report.extra
            assert extra["fleet_near_misses"] == 0.0
            assert extra["fleet_conflict_holds"] == 0.0
            assert extra["fleet_min_separation_m"] == pytest.approx(
                state.min_separation_m
            )

    def test_duo_deterministic(self, duo_flight):
        _, first = duo_flight
        results, errors = run_workloads_fleet(
            [_tiny_mission(0, 10), _tiny_mission(1, 11)], shared_world=True
        )
        assert errors == [None, None]
        assert _report_dicts(results) == _report_dicts(first)

    def test_duo_permutation_invariant(self, duo_flight):
        """Mission order is bookkeeping: flying [m1, m0] produces the
        same per-member reports as [m0, m1]."""
        _, first = duo_flight
        results, errors = run_workloads_fleet(
            [_tiny_mission(1, 11), _tiny_mission(0, 10)], shared_world=True
        )
        assert errors == [None, None]
        assert _report_dicts([results[1], results[0]]) == _report_dicts(first)
