"""Tests for the top-level API (run_workload / make_simulation)."""

import numpy as np
import pytest

from repro import WorkloadResult, available_workloads, run_workload
from repro.compute import CLOUD_I7_GTX1080
from repro.core.api import make_simulation
from repro.core.workloads import ScanningWorkload


class TestRunWorkload:
    def test_result_structure(self):
        result = run_workload("scanning", cores=4, frequency_ghz=2.2, seed=1)
        assert isinstance(result, WorkloadResult)
        assert result.workload == "scanning"
        assert result.platform.cores == 4
        assert result.mission_time_s > 0
        assert result.average_velocity_ms > 0
        assert result.total_energy_kj > 0
        assert result.success
        assert "lawnmower" in result.kernel_stats

    def test_workload_kwargs_forwarded(self):
        result = run_workload(
            "scanning",
            seed=1,
            workload_kwargs={"area_width": 30.0, "area_length": 20.0},
        )
        assert result.report.extra["area_m2"] == pytest.approx(600.0)

    def test_unknown_workload_kwargs_rejected(self):
        """A typo'd constructor keyword must fail loudly, not vanish."""
        with pytest.raises(TypeError, match="area_widht"):
            run_workload(
                "scanning", seed=1, workload_kwargs={"area_widht": 30.0}
            )
        # Kwargs forwarded through a **kwargs chain are still validated
        # (search_rescue splats into the mapping base constructor).
        with pytest.raises(TypeError, match="coverage_tgt"):
            run_workload(
                "search_rescue", seed=1, workload_kwargs={"coverage_tgt": 0.5}
            )

    def test_seed_not_allowed_in_workload_kwargs(self):
        with pytest.raises(ValueError, match="seed"):
            run_workload("scanning", workload_kwargs={"seed": 3})

    def test_result_echoes_resolved_config(self):
        """Campaign rows are self-describing: the result carries the
        seed, noise level, and workload kwargs it actually ran with."""
        kwargs = {"area_width": 40.0, "area_length": 24.0}
        result = run_workload(
            "scanning",
            cores=2,
            frequency_ghz=0.8,
            seed=7,
            depth_noise_std=0.25,
            workload_kwargs=kwargs,
        )
        assert result.seed == 7
        assert result.depth_noise_std == 0.25
        assert result.workload_kwargs == kwargs
        assert result.platform.cores == 2

    def test_invalid_operating_point(self):
        with pytest.raises(ValueError):
            run_workload("scanning", cores=9)
        with pytest.raises(ValueError):
            run_workload("scanning", frequency_ghz=3.3)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            run_workload("skywriting")

    def test_available_workloads_sorted(self):
        names = available_workloads()
        assert names == sorted(names)
        assert len(names) == 5


class TestMakeSimulation:
    def test_platform_spec_override(self):
        workload = ScanningWorkload(seed=1)
        sim = make_simulation(
            workload, cores=8, frequency_ghz=4.0, spec=CLOUD_I7_GTX1080
        )
        assert sim.platform.spec.name == "Cloud i7 + GTX 1080"

    def test_depth_noise_wiring(self):
        workload = ScanningWorkload(seed=1)
        sim = make_simulation(workload, depth_noise_std=0.7, seed=1)
        assert sim.camera.depth_noise is not None
        assert sim.camera.depth_noise.std == 0.7

    def test_no_noise_by_default(self):
        workload = ScanningWorkload(seed=1)
        sim = make_simulation(workload, seed=1)
        assert sim.camera.depth_noise is None

    def test_workload_bound_and_positioned(self):
        workload = ScanningWorkload(seed=1)
        sim = make_simulation(workload, seed=1)
        assert workload.sim is sim
        assert sim.world.is_free(
            sim.state.position + np.array([0, 0, 1.5]), margin=0.5
        )

    def test_kernel_model_workload_scoped(self):
        workload = ScanningWorkload(seed=1)
        sim = make_simulation(workload, seed=1)
        assert sim.kernel_model.workload == "scanning"

    def test_seeded_determinism_across_assemblies(self):
        a = run_workload("scanning", seed=4)
        b = run_workload("scanning", seed=4)
        assert a.mission_time_s == b.mission_time_s
        assert a.total_energy_kj == pytest.approx(b.total_energy_kj)
