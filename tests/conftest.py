"""Shared test fixtures and options.

``--update-goldens`` rewrites the golden-trace digests under
``tests/goldens/`` from the current code's mission outcomes instead of
comparing against them — see ``tests/test_goldens.py`` for the workflow.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from current mission outcomes",
    )


@pytest.fixture
def update_goldens(request):
    """True when this run should rewrite golden digests, not check them."""
    return request.config.getoption("--update-goldens")
