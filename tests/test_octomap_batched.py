"""Batched-vs-scalar OctoMap equivalence suite.

The batched array kernels (vectorized DDA, batched clamped log-odds
updates, packed-index box queries) are the perception hot path; the scalar
methods are the ground truth they must reproduce *exactly*.  Every test
here compares the two implementations on identical seeded inputs.
"""

import numpy as np
import pytest

from repro.perception.octomap import (
    LOG_ODDS_MAX,
    LOG_ODDS_MIN,
    OctoMap,
    pack_keys,
    unpack_keys,
)
from repro.perception.point_cloud import PointCloud
from repro.world.geometry import AABB, vec

BOUNDS = AABB(vec(-20.0, -20.0, 0.0), vec(20.0, 20.0, 10.0))


def seeded_cloud(seed: int, n_hits: int = 400, n_misses: int = 40) -> PointCloud:
    """A deterministic synthetic scan: random beams from a random origin."""
    rng = np.random.default_rng(seed)
    origin = rng.uniform([-15.0, -15.0, 1.0], [15.0, 15.0, 5.0])
    d = rng.normal(size=(n_hits, 3))
    d /= np.linalg.norm(d, axis=1)[:, None]
    hits = origin + d * rng.uniform(0.5, 25.0, size=(n_hits, 1))
    d2 = rng.normal(size=(n_misses, 3))
    d2 /= np.linalg.norm(d2, axis=1)[:, None]
    misses = origin + d2 * 30.0
    return PointCloud(origin=origin, hits=hits, misses=misses)


def assert_identical_cells(batched: OctoMap, scalar: OctoMap) -> None:
    assert set(batched._cells) == set(scalar._cells)
    for key, value in scalar._cells.items():
        assert batched._cells[key] == value, key


class TestPackedKeys:
    def test_pack_round_trip(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(-5000, 5000, size=(500, 3)).astype(np.int64)
        assert np.array_equal(unpack_keys(pack_keys(keys)), keys)

    def test_pack_orders_lexicographically_per_column(self):
        a = pack_keys(np.array([[0, 0, 0]]))[0]
        b = pack_keys(np.array([[0, 0, 1]]))[0]
        c = pack_keys(np.array([[0, 1, -5]]))[0]
        assert a < b < c


class TestBatchRayKeys:
    def test_matches_scalar_on_random_rays(self):
        om = OctoMap(resolution=0.3)
        rng = np.random.default_rng(7)
        origin = vec(0.1, 0.2, 0.3)
        endpoints = rng.uniform(-10.0, 10.0, size=(300, 3))
        keys, ray_idx = om.batch_ray_keys(origin, endpoints)
        for i in range(endpoints.shape[0]):
            batch = [tuple(k) for k in keys[ray_idx == i].tolist()]
            assert batch == om.ray_keys(origin, endpoints[i])

    def test_matches_scalar_axis_aligned_and_degenerate(self):
        om = OctoMap(resolution=0.5)
        origin = vec(0.25, 0.25, 0.25)
        endpoints = np.array(
            [
                [5.25, 0.25, 0.25],   # +x aligned
                [0.25, -4.75, 0.25],  # -y aligned
                [0.25, 0.25, 0.25],   # zero-length
                [0.30, 0.25, 0.25],   # same-voxel
                [3.25, 2.25, 1.25],   # diagonal
            ]
        )
        keys, ray_idx = om.batch_ray_keys(origin, endpoints)
        for i in range(endpoints.shape[0]):
            batch = [tuple(k) for k in keys[ray_idx == i].tolist()]
            assert batch == om.ray_keys(origin, endpoints[i])

    def test_empty_batch(self):
        om = OctoMap(resolution=0.5)
        keys, ray_idx = om.batch_ray_keys(vec(0, 0, 0), np.zeros((0, 3)))
        assert keys.shape == (0, 3)
        assert ray_idx.shape == (0,)

    def test_per_ray_origins(self):
        om = OctoMap(resolution=0.4)
        rng = np.random.default_rng(11)
        origins = rng.uniform(-3.0, 3.0, size=(50, 3))
        endpoints = rng.uniform(-8.0, 8.0, size=(50, 3))
        keys, ray_idx = om.batch_ray_keys(origins, endpoints)
        for i in range(50):
            batch = [tuple(k) for k in keys[ray_idx == i].tolist()]
            assert batch == om.ray_keys(origins[i], endpoints[i])


class TestInsertScanEquivalence:
    @pytest.mark.parametrize("resolution", [0.25, 0.5, 1.0])
    def test_identical_cells_across_resolutions(self, resolution):
        batched = OctoMap(resolution=resolution, bounds=BOUNDS)
        scalar = OctoMap(resolution=resolution, bounds=BOUNDS)
        for seed in range(5):
            cloud = seeded_cloud(seed)
            n_b = batched.insert_scan(cloud, carve_rays=60)
            n_s = scalar.insert_scan_scalar(cloud, carve_rays=60)
            assert n_b == n_s
        assert batched.rays_inserted == scalar.rays_inserted
        assert batched.insertions == scalar.insertions
        assert_identical_cells(batched, scalar)

    def test_unbounded_map_equivalence(self):
        batched = OctoMap(resolution=0.5)
        scalar = OctoMap(resolution=0.5)
        cloud = seeded_cloud(13)
        batched.insert_scan(cloud, carve_rays=40)
        scalar.insert_scan_scalar(cloud, carve_rays=40)
        assert_identical_cells(batched, scalar)

    def test_empty_scan(self):
        batched = OctoMap(resolution=0.5, bounds=BOUNDS)
        scalar = OctoMap(resolution=0.5, bounds=BOUNDS)
        empty = PointCloud(
            origin=vec(0, 0, 1),
            hits=np.zeros((0, 3)),
            misses=np.zeros((0, 3)),
        )
        assert batched.insert_scan(empty) == 0
        assert scalar.insert_scan_scalar(empty) == 0
        assert len(batched) == len(scalar) == 0
        assert batched.insertions == scalar.insertions == 1

    def test_out_of_bounds_rays_ignored_identically(self):
        """Rays whose endpoints (and much of their path) leave the map
        bounds must update exactly the same in-bounds voxels."""
        tight = AABB(vec(0.0, 0.0, 0.0), vec(4.0, 4.0, 4.0))
        batched = OctoMap(resolution=0.5, bounds=tight)
        scalar = OctoMap(resolution=0.5, bounds=tight)
        origin = vec(2.0, 2.0, 2.0)
        rng = np.random.default_rng(21)
        d = rng.normal(size=(60, 3))
        d /= np.linalg.norm(d, axis=1)[:, None]
        hits = origin + d * 50.0  # all endpoints far outside bounds
        cloud = PointCloud(origin=origin, hits=hits, misses=np.zeros((0, 3)))
        batched.insert_scan(cloud, carve_rays=60)
        scalar.insert_scan_scalar(cloud, carve_rays=60)
        assert_identical_cells(batched, scalar)
        for key in batched._cells:
            assert tight.contains(batched.center_of(key))

    def test_carve_zero_and_stride(self):
        for carve in (0, 3, 1000):
            batched = OctoMap(resolution=0.5, bounds=BOUNDS)
            scalar = OctoMap(resolution=0.5, bounds=BOUNDS)
            cloud = seeded_cloud(5)
            batched.insert_scan(cloud, carve_rays=carve)
            scalar.insert_scan_scalar(cloud, carve_rays=carve)
            assert_identical_cells(batched, scalar)


class TestInsertPointCloudEquivalence:
    def test_endpoint_only_identical(self):
        batched = OctoMap(resolution=0.5, bounds=BOUNDS)
        scalar = OctoMap(resolution=0.5, bounds=BOUNDS)
        cloud = seeded_cloud(31, n_hits=800)
        n_b = batched.insert_point_cloud(cloud, endpoint_only=True)
        n_s = scalar.insert_point_cloud_scalar(cloud, endpoint_only=True)
        assert n_b == n_s
        assert_identical_cells(batched, scalar)

    def test_full_mode_matches_scalar_outside_mixed_voxels(self):
        """Full carving mode: same voxel set and counters as the scalar
        loop, and identical values everywhere except voxels that receive
        *both* hit and miss updates in one scan — there the batch applies
        misses before hits (documented batch semantics), which can differ
        from the scalar interleaving once clamping engages."""
        batched = OctoMap(resolution=0.5, bounds=BOUNDS)
        scalar = OctoMap(resolution=0.5, bounds=BOUNDS)
        cloud = seeded_cloud(37, n_hits=100, n_misses=20)
        n_b = batched.insert_point_cloud(cloud)
        n_s = scalar.insert_point_cloud_scalar(cloud)
        assert n_b == n_s
        assert batched.rays_inserted == scalar.rays_inserted
        assert set(batched._cells) == set(scalar._cells)

        probe = OctoMap(resolution=0.5, bounds=BOUNDS)
        carve_keys, _ = probe.batch_ray_keys(
            cloud.origin, cloud.all_endpoints
        )
        carved = {tuple(k) for k in carve_keys.tolist()}
        hit_voxels = {
            tuple(k)
            for k in probe.keys_for_points(cloud.hits).tolist()
        }
        mixed = carved & hit_voxels
        for key, value in scalar._cells.items():
            if key in mixed:
                # Bounded divergence: one clamp-order difference at most.
                assert LOG_ODDS_MIN <= batched._cells[key] <= LOG_ODDS_MAX
                assert batched._cells[key] == pytest.approx(
                    value, abs=probe.hit_update + abs(probe.miss_update)
                )
            else:
                assert batched._cells[key] == pytest.approx(value, abs=1e-12)

    def test_max_rays_subsample_identical(self):
        batched = OctoMap(resolution=0.5, bounds=BOUNDS)
        scalar = OctoMap(resolution=0.5, bounds=BOUNDS)
        cloud = seeded_cloud(41, n_hits=600)
        n_b = batched.insert_point_cloud(cloud, max_rays=50, endpoint_only=True)
        n_s = scalar.insert_point_cloud_scalar(
            cloud, max_rays=50, endpoint_only=True
        )
        assert n_b == n_s
        assert_identical_cells(batched, scalar)


class TestBatchedClamping:
    """Regression: batched updates must clamp to [LOG_ODDS_MIN,
    LOG_ODDS_MAX] exactly as the per-update scalar path does."""

    def test_saturate_occupied_via_duplicate_endpoints(self):
        om = OctoMap(resolution=0.5)
        # 100 identical endpoints in one batch: +0.85 each would reach 85
        # without clamping; the scalar path clamps at every update.
        point = np.tile(vec(1.2, 1.2, 1.2), (100, 1))
        cloud = PointCloud(
            origin=vec(0.2, 0.2, 0.2), hits=point, misses=np.zeros((0, 3))
        )
        om.insert_point_cloud(cloud, endpoint_only=True)
        assert om.log_odds_at((1.2, 1.2, 1.2)) == LOG_ODDS_MAX

    def test_saturate_free_via_repeated_scans(self):
        om = OctoMap(resolution=0.5)
        scalar = OctoMap(resolution=0.5)
        # A long beam repeatedly carving the same corridor must floor at
        # LOG_ODDS_MIN in both implementations.
        cloud = PointCloud(
            origin=vec(0.25, 0.25, 0.25),
            hits=np.array([[9.75, 0.25, 0.25]]),
            misses=np.zeros((0, 3)),
        )
        for _ in range(20):
            om.insert_scan(cloud, carve_rays=1)
            scalar.insert_scan_scalar(cloud, carve_rays=1)
        probe = (5.25, 0.25, 0.25)
        assert om.log_odds_at(probe) == LOG_ODDS_MIN
        assert_identical_cells(om, scalar)

    def test_saturate_both_directions_batch_counts(self):
        """One voxel driven into both clamp rails by batched updates."""
        om = OctoMap(resolution=1.0)
        up = np.tile(vec(0.5, 0.5, 0.5), (50, 1))
        cloud_up = PointCloud(
            origin=vec(-3.5, 0.5, 0.5), hits=up, misses=np.zeros((0, 3))
        )
        om.insert_point_cloud(cloud_up, endpoint_only=True)
        assert om.log_odds_at((0.5, 0.5, 0.5)) == LOG_ODDS_MAX
        # Now carve through that voxel until it floors.
        through = PointCloud(
            origin=vec(-3.5, 0.5, 0.5),
            hits=np.zeros((0, 3)),
            misses=np.tile(vec(6.5, 0.5, 0.5), (1, 1)),
        )
        for _ in range(40):
            om.insert_point_cloud(through)
        assert om.log_odds_at((0.5, 0.5, 0.5)) == LOG_ODDS_MIN


class TestVectorizedQueries:
    @staticmethod
    def _random_map(seed: int, resolution: float = 0.5) -> OctoMap:
        om = OctoMap(resolution=resolution)
        rng = np.random.default_rng(seed)
        for p in rng.uniform(-5.0, 5.0, size=(300, 3)):
            om.update_cell(om.key_for(p), float(rng.normal()))
        return om

    @staticmethod
    def _brute_occupied(om: OctoMap, box: AABB) -> bool:
        lo_key = om.key_for(box.lo)
        hi_key = om.key_for(box.hi)
        for i in range(lo_key[0], hi_key[0] + 1):
            for j in range(lo_key[1], hi_key[1] + 1):
                for k in range(lo_key[2], hi_key[2] + 1):
                    value = om._cells.get((i, j, k))
                    if value is not None and value > 0.0:
                        return True
        return False

    @staticmethod
    def _brute_unknown_fraction(om: OctoMap, box: AABB) -> float:
        lo_key = om.key_for(box.lo)
        hi_key = om.key_for(box.hi)
        total = 0
        unknown = 0
        for i in range(lo_key[0], hi_key[0] + 1):
            for j in range(lo_key[1], hi_key[1] + 1):
                for k in range(lo_key[2], hi_key[2] + 1):
                    total += 1
                    if (i, j, k) not in om._cells:
                        unknown += 1
        return unknown / total

    def test_region_queries_match_triple_loop(self):
        om = self._random_map(2)
        rng = np.random.default_rng(17)
        for _ in range(150):
            center = rng.uniform(-6.0, 6.0, size=3)
            size = rng.uniform(0.1, 3.0, size=3)
            box = AABB(center - size / 2, center + size / 2)
            assert om.region_occupied(box) == self._brute_occupied(om, box)
            assert om.region_unknown_fraction(box) == pytest.approx(
                self._brute_unknown_fraction(om, box)
            )
            margin = float(rng.uniform(0.0, 1.0))
            assert om.region_occupied(box, margin) == self._brute_occupied(
                om, box.inflate(margin)
            )

    def test_boxes_queries_match_scalar_twins_batched(self):
        """The M-box reduceat kernel (ragged column spans + run-length
        dedupe in ``_boxes_range_query``) vs the per-box scalar twins.

        Consecutive duplicate boxes are injected deliberately: they
        exercise the dedupe/scatter path, which must answer each run
        once and fan the result back out unchanged.
        """
        om = self._random_map(11)
        rng = np.random.default_rng(29)
        centers = rng.uniform(-6.0, 6.0, size=(40, 3))
        sizes = rng.uniform(0.1, 3.0, size=(40, 3))
        los = centers - sizes / 2
        his = centers + sizes / 2
        # Duplicate a slice of consecutive rows (half-voxel path samples
        # quantizing to one box is the production shape of this input).
        los = np.concatenate((los, los[10:15], los[10:11].repeat(4, axis=0)))
        his = np.concatenate((his, his[10:15], his[10:11].repeat(4, axis=0)))
        occupied = om.boxes_occupied(los, his)
        unknown = om.boxes_unknown_fraction(los, his)
        assert occupied.shape == unknown.shape == (los.shape[0],)
        for b in range(los.shape[0]):
            box = AABB(los[b], his[b])
            assert bool(occupied[b]) == om.region_occupied_scalar(box), b
            assert float(unknown[b]) == pytest.approx(
                om.region_unknown_fraction_scalar(box)
            ), b

    def test_queries_see_updates_immediately(self):
        """The lazy index must be invalidated by every write path."""
        om = OctoMap(resolution=0.5)
        box = AABB(vec(0, 0, 0), vec(0.4, 0.4, 0.4))
        assert not om.region_occupied(box)
        om.mark_occupied((0.2, 0.2, 0.2))  # scalar write
        assert om.region_occupied(box)
        cloud = PointCloud(
            origin=vec(0.2, 0.2, 0.2),
            hits=np.array([[4.2, 0.2, 0.2]]),
            misses=np.zeros((0, 3)),
        )
        om.insert_scan(cloud, carve_rays=1)  # batched write
        probe = AABB(vec(2.0, 0.0, 0.0), vec(2.4, 0.4, 0.4))
        assert om.region_unknown_fraction(probe) < 1.0

    def test_log_odds_many_matches_scalar(self):
        om = self._random_map(5)
        rng = np.random.default_rng(23)
        points = rng.uniform(-6.0, 6.0, size=(500, 3))
        values = om.log_odds_many(points)
        for p, v in zip(points, values):
            scalar = om.log_odds_at(p)
            if scalar is None:
                assert np.isnan(v)
            else:
                assert v == scalar
