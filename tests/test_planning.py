"""Tests for planning kernels: A*, RRT/RRT*, PRM, lawnmower, smoothing."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perception.octomap import OctoMap
from repro.planning import (
    CollisionChecker,
    CoverageArea,
    GroundTruthChecker,
    PrmPlanner,
    RrtPlanner,
    RrtStarPlanner,
    astar,
    coverage_length,
    dijkstra_all,
    lanes_required,
    lawnmower_path,
    shortcut_path,
    smooth_trajectory,
    time_parameterize,
)
from repro.planning.collision import escape_point
from repro.world import AABB, empty_world, make_box_obstacle, path_length, vec


# ---------------------------------------------------------------------------
# A*
# ---------------------------------------------------------------------------
GRID = {
    "A": [("B", 1.0), ("C", 4.0)],
    "B": [("C", 1.0), ("D", 5.0)],
    "C": [("D", 1.0)],
    "D": [],
}


class TestAstar:
    def test_finds_shortest_path(self):
        result = astar("A", "D", lambda n: GRID[n], lambda n: 0.0)
        assert result.found
        assert result.path == ["A", "B", "C", "D"]
        assert result.cost == pytest.approx(3.0)

    def test_unreachable_goal(self):
        result = astar("D", "A", lambda n: GRID[n], lambda n: 0.0)
        assert not result.found
        assert result.cost == float("inf")

    def test_start_is_goal(self):
        result = astar("A", "A", lambda n: GRID[n], lambda n: 0.0)
        assert result.found
        assert result.path == ["A"]
        assert result.cost == 0.0

    def test_negative_cost_rejected(self):
        bad = {"A": [("B", -1.0)], "B": []}
        with pytest.raises(ValueError):
            astar("A", "B", lambda n: bad[n], lambda n: 0.0)

    def test_heuristic_reduces_expansions(self):
        """A* with an informative heuristic must not expand more nodes."""
        n = 20
        goal = (n - 1, n - 1)

        def neighbors(node):
            x, y = node
            out = []
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = x + dx, y + dy
                if 0 <= nx < n and 0 <= ny < n:
                    out.append(((nx, ny), 1.0))
            return out

        def manhattan(node):
            return abs(node[0] - goal[0]) + abs(node[1] - goal[1])

        blind = astar((0, 0), goal, neighbors, lambda n_: 0.0)
        informed = astar((0, 0), goal, neighbors, manhattan)
        assert informed.found and blind.found
        assert informed.cost == pytest.approx(blind.cost)
        assert informed.expanded <= blind.expanded

    def test_dijkstra_all_costs(self):
        dist = dijkstra_all("A", lambda n: GRID[n])
        assert dist["D"] == pytest.approx(3.0)
        assert dist["A"] == 0.0

    def test_dijkstra_max_cost_bound(self):
        dist = dijkstra_all("A", lambda n: GRID[n], max_cost=1.5)
        assert "D" not in dist


# ---------------------------------------------------------------------------
# Collision checking
# ---------------------------------------------------------------------------
def _wall_map(resolution=0.5):
    """Map with a believed wall at x in [5, 5.5], spanning y,z in [0, 10]."""
    om = OctoMap(resolution=resolution)
    for y in np.arange(0.25, 10, resolution):
        for z in np.arange(0.25, 10, resolution):
            om.mark_occupied((5.25, y, z))
    # Everything else in the corridor observed-free.
    for x in np.arange(0.25, 10, resolution):
        if 5.0 <= x <= 5.5:
            continue
        for y in np.arange(0.25, 10, resolution):
            for z in np.arange(0.25, 10, resolution):
                om.mark_free((x, y, z))
    return om


class TestCollisionChecker:
    def test_point_queries(self):
        checker = CollisionChecker(_wall_map(), drone_radius=0.3)
        assert checker.point_free(vec(2, 5, 5))
        assert not checker.point_free(vec(5.25, 5, 5))

    def test_drone_radius_inflates(self):
        thin = CollisionChecker(_wall_map(), drone_radius=0.1)
        fat = CollisionChecker(_wall_map(), drone_radius=1.2)
        near_wall = vec(4.4, 5, 5)
        assert thin.point_free(near_wall)
        assert not fat.point_free(near_wall)

    def test_segment_blocked_by_wall(self):
        checker = CollisionChecker(_wall_map(), drone_radius=0.3)
        assert not checker.segment_free(vec(2, 5, 5), vec(8, 5, 5))
        assert checker.segment_free(vec(2, 2, 5), vec(2, 8, 5))

    def test_unknown_treated_as_free_by_default(self):
        om = OctoMap(resolution=0.5)
        checker = CollisionChecker(om, drone_radius=0.3)
        assert checker.point_free(vec(50, 50, 50))

    def test_unknown_conservative_mode(self):
        om = OctoMap(resolution=0.5)
        checker = CollisionChecker(
            om, drone_radius=0.3, treat_unknown_as_occupied=True
        )
        assert not checker.point_free(vec(50, 50, 50))

    def test_first_blocked_index(self):
        checker = CollisionChecker(_wall_map(), drone_radius=0.3)
        path = [vec(2, 5, 5), vec(4, 5, 5), vec(8, 5, 5), vec(9, 5, 5)]
        assert checker.first_blocked_index(path) == 2
        clear = [vec(2, 2, 5), vec(2, 8, 5)]
        assert checker.first_blocked_index(clear) is None

    def test_escape_point_from_occupied_start(self):
        checker = CollisionChecker(_wall_map(), drone_radius=0.3)
        stuck = vec(5.25, 5, 5)
        escaped = escape_point(checker, stuck, np.random.default_rng(0))
        assert escaped is not None
        assert checker.point_free(escaped)

    def test_ground_truth_checker(self):
        world = empty_world((20, 20, 10))
        world.add(make_box_obstacle((5, 0, 2.5), (2, 2, 5)))
        gt = GroundTruthChecker(world, drone_radius=0.3)
        assert gt.point_free(vec(0, 0, 2))
        assert not gt.point_free(vec(5, 0, 2))
        assert not gt.segment_free(vec(0, 0, 2), vec(10, 0, 2))


# ---------------------------------------------------------------------------
# Sampling-based planners
# ---------------------------------------------------------------------------
def _corridor_setup():
    """A wall with a gap at y in [6, 8]: planners must route through it."""
    om = OctoMap(resolution=0.5)
    for y in np.arange(0.25, 10, 0.5):
        for z in np.arange(0.25, 6, 0.5):
            if 6.0 <= y <= 8.0:
                continue
            om.mark_occupied((5.25, y, z))
    bounds = AABB(vec(0, 0, 0), vec(10, 10, 6))
    checker = CollisionChecker(om, drone_radius=0.3)
    return checker, bounds


@pytest.mark.slow
class TestRrtPlanners:
    @pytest.mark.parametrize("cls", [RrtPlanner, RrtStarPlanner])
    def test_plans_through_gap(self, cls):
        checker, bounds = _corridor_setup()
        planner = cls(checker, bounds, step_size=1.5, max_iterations=4000, seed=4)
        result = planner.plan(vec(1, 3, 2), vec(9, 3, 2))
        assert result.success
        assert checker.path_free(result.waypoints)
        assert np.allclose(result.waypoints[0], [1, 3, 2])
        assert np.allclose(result.waypoints[-1], [9, 3, 2])

    def test_open_space_nearly_straight(self):
        om = OctoMap(resolution=0.5)
        checker = CollisionChecker(om, drone_radius=0.3)
        bounds = AABB(vec(0, 0, 0), vec(10, 10, 10))
        planner = RrtPlanner(checker, bounds, seed=1, goal_bias=0.3)
        result = planner.plan(vec(1, 1, 1), vec(9, 9, 9))
        assert result.success
        straight = float(np.linalg.norm(vec(9, 9, 9) - vec(1, 1, 1)))
        assert result.length < straight * 2.0

    def test_failure_when_goal_walled_off(self):
        om = OctoMap(resolution=0.5)
        # Solid wall, no gap.
        for y in np.arange(0.25, 10, 0.5):
            for z in np.arange(0.25, 10, 0.5):
                om.mark_occupied((5.25, y, z))
        checker = CollisionChecker(om, drone_radius=0.3)
        bounds = AABB(vec(0, 0, 0), vec(10, 10, 10))
        planner = RrtPlanner(checker, bounds, max_iterations=300, seed=2)
        result = planner.plan(vec(1, 5, 5), vec(9, 5, 5))
        assert not result.success
        assert result.waypoints == []

    def test_seeded_determinism(self):
        checker, bounds = _corridor_setup()
        r1 = RrtPlanner(checker, bounds, seed=9).plan(vec(1, 3, 2), vec(9, 3, 2))
        r2 = RrtPlanner(checker, bounds, seed=9).plan(vec(1, 3, 2), vec(9, 3, 2))
        assert r1.success == r2.success
        assert len(r1.waypoints) == len(r2.waypoints)

    def test_rrt_star_not_longer_than_rrt(self):
        """RRT* rewiring should give paths at most ~as long as plain RRT."""
        checker, bounds = _corridor_setup()
        rrt = RrtPlanner(checker, bounds, seed=7, max_iterations=2500)
        star = RrtStarPlanner(checker, bounds, seed=7, max_iterations=2500)
        a = rrt.plan(vec(1, 3, 2), vec(9, 3, 2))
        b = star.plan(vec(1, 3, 2), vec(9, 3, 2))
        assert a.success and b.success
        assert b.length <= a.length * 1.25

    def test_parameter_validation(self):
        checker, bounds = _corridor_setup()
        with pytest.raises(ValueError):
            RrtPlanner(checker, bounds, step_size=0.0)
        with pytest.raises(ValueError):
            RrtPlanner(checker, bounds, goal_bias=1.5)

    def test_escape_from_occupied_start(self):
        checker, bounds = _corridor_setup()
        planner = RrtPlanner(checker, bounds, seed=3, max_iterations=3000)
        stuck = vec(5.25, 3, 2)  # inside the believed wall
        result = planner.plan(stuck, vec(9, 3, 2))
        assert result.success
        assert np.allclose(result.waypoints[0], stuck)


class TestPrmPlanner:
    def test_plans_through_gap(self):
        checker, bounds = _corridor_setup()
        planner = PrmPlanner(checker, bounds, n_samples=250, seed=5)
        result = planner.plan(vec(1, 3, 2), vec(9, 3, 2))
        assert result.success
        assert checker.path_free(result.waypoints)

    def test_direct_shortcut_in_open_space(self):
        om = OctoMap(resolution=0.5)
        checker = CollisionChecker(om, drone_radius=0.3)
        bounds = AABB(vec(0, 0, 0), vec(10, 10, 10))
        planner = PrmPlanner(checker, bounds, n_samples=50, seed=1)
        result = planner.plan(vec(1, 1, 1), vec(9, 9, 9))
        assert result.success
        assert len(result.waypoints) == 2  # straight line, no roadmap needed

    def test_roadmap_reused_across_queries(self):
        checker, bounds = _corridor_setup()
        planner = PrmPlanner(checker, bounds, n_samples=200, seed=5)
        planner.build()
        v_count = planner.num_vertices
        planner.plan(vec(1, 3, 2), vec(9, 3, 2))
        planner.plan(vec(1, 8, 2), vec(9, 1, 2))
        assert planner.num_vertices == v_count

    def test_roadmap_has_edges(self):
        checker, bounds = _corridor_setup()
        planner = PrmPlanner(checker, bounds, n_samples=150, seed=2)
        planner.build()
        assert planner.num_edges > 0

    def test_validation(self):
        checker, bounds = _corridor_setup()
        with pytest.raises(ValueError):
            PrmPlanner(checker, bounds, n_samples=1)


# ---------------------------------------------------------------------------
# Lawnmower
# ---------------------------------------------------------------------------
class TestLawnmower:
    def test_covers_area_boundaries(self):
        area = CoverageArea(0, 0, 100, 60)
        path = lawnmower_path(area, altitude=15, lane_spacing=12)
        xs = [p[0] for p in path]
        ys = [p[1] for p in path]
        assert min(xs) == pytest.approx(-50)
        assert max(xs) == pytest.approx(50)
        assert min(ys) == pytest.approx(-30)
        assert max(ys) == pytest.approx(30)

    def test_constant_altitude(self):
        path = lawnmower_path(CoverageArea(0, 0, 40, 40), 10.0, 8.0)
        assert all(p[2] == pytest.approx(10.0) for p in path)

    def test_alternating_direction(self):
        path = lawnmower_path(CoverageArea(0, 0, 40, 40), 10.0, 10.0)
        # Passes alternate west->east / east->west.
        first_pass = path[1][0] - path[0][0]
        second_pass = path[3][0] - path[2][0]
        assert first_pass * second_pass < 0

    def test_lane_spacing_bounds_gap(self):
        area = CoverageArea(0, 0, 50, 37)
        path = lawnmower_path(area, 10.0, lane_spacing=8.0)
        lane_ys = sorted({round(float(p[1]), 6) for p in path})
        gaps = [b - a for a, b in zip(lane_ys[:-1], lane_ys[1:])]
        assert all(g <= 8.0 + 1e-9 for g in gaps)

    def test_lanes_required(self):
        assert lanes_required(CoverageArea(0, 0, 10, 24), 12.0) == 3

    def test_coverage_length_grows_with_finer_lanes(self):
        area = CoverageArea(0, 0, 100, 60)
        assert coverage_length(area, 6.0) > coverage_length(area, 12.0)

    def test_start_corner_variants(self):
        area = CoverageArea(0, 0, 40, 40)
        sw = lawnmower_path(area, 10, 10, start_corner="southwest")
        ne = lawnmower_path(area, 10, 10, start_corner="northeast")
        assert sw[0][0] == pytest.approx(-20)
        assert sw[0][1] == pytest.approx(-20)
        assert ne[0][0] == pytest.approx(20)
        assert ne[0][1] == pytest.approx(20)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoverageArea(0, 0, -1, 10)
        with pytest.raises(ValueError):
            lawnmower_path(CoverageArea(0, 0, 10, 10), 10.0, lane_spacing=0)
        with pytest.raises(ValueError):
            lawnmower_path(CoverageArea(0, 0, 10, 10), 10.0, 5.0, "middle")


# ---------------------------------------------------------------------------
# Smoothing
# ---------------------------------------------------------------------------
class TestSmoothing:
    def test_shortcut_without_checker_is_identity(self):
        pts = [vec(0, 0, 0), vec(5, 5, 0), vec(10, 0, 0)]
        assert len(shortcut_path(pts, None)) == 3

    def test_shortcut_removes_detour_in_free_space(self):
        om = OctoMap(resolution=0.5)
        checker = CollisionChecker(om, drone_radius=0.3)
        pts = [vec(0, 0, 1), vec(3, 8, 1), vec(6, -8, 1), vec(10, 0, 1)]
        out = shortcut_path(pts, checker, attempts=100, seed=1)
        assert path_length(out) < path_length(pts)

    def test_time_parameterize_respects_limits(self):
        pts = [vec(0, 0, 5), vec(30, 0, 5), vec(30, 30, 5)]
        traj = time_parameterize(pts, max_speed=5.0, max_acceleration=3.0)
        assert traj.max_speed() <= 5.0 + 1e-9
        for a, b in zip(traj.points[:-1], traj.points[1:]):
            assert b.time > a.time

    def test_short_hop_from_rest_has_sane_duration(self):
        """Regression: a 2-point hop starting/ending at rest must take
        roughly the triangular-profile time, not an absurd floor value."""
        a, b = vec(0, 0, 0), vec(0.7, 0, 0)
        traj = time_parameterize([a, b], max_speed=8.0, max_acceleration=5.0)
        expected = 2.0 * math.sqrt(0.7 / 5.0)
        assert traj.duration == pytest.approx(expected, rel=0.3)

    def test_sharp_corner_slows_vehicle(self):
        straight = time_parameterize(
            [vec(0, 0, 0), vec(10, 0, 0), vec(20, 0, 0)], 8.0, 5.0
        )
        corner = time_parameterize(
            [vec(0, 0, 0), vec(10, 0, 0), vec(0, 0.5, 0)], 8.0, 5.0
        )
        # Speed at the middle waypoint of a U-turn is near zero.
        mid_straight = straight.points[len(straight.points) // 2]
        assert corner.duration > 0
        # Find the corner waypoint in the corner trajectory:
        corner_speeds = [
            float(np.linalg.norm(p.velocity)) for p in corner.points
        ]
        assert min(corner_speeds) < float(
            np.linalg.norm(mid_straight.velocity)
        )

    def test_trajectory_sampling(self):
        traj = time_parameterize(
            [vec(0, 0, 0), vec(10, 0, 0)], max_speed=5.0, max_acceleration=2.5
        )
        mid = traj.sample(traj.points[0].time + traj.duration / 2)
        assert 0 < mid.position[0] < 10
        before = traj.sample(traj.points[0].time - 5)
        after = traj.sample(traj.points[-1].time + 5)
        assert np.allclose(before.position, [0, 0, 0])
        assert np.allclose(after.position, [10, 0, 0])

    def test_sample_empty_raises(self):
        from repro.planning.smoothing import Trajectory

        with pytest.raises(ValueError):
            Trajectory(points=[]).sample(0.0)

    def test_smooth_trajectory_end_to_end(self):
        om = OctoMap(resolution=0.5)
        checker = CollisionChecker(om, drone_radius=0.3)
        pts = [vec(0, 0, 2), vec(10, 0, 2), vec(10, 10, 2)]
        traj = smooth_trajectory(
            pts, max_speed=6.0, max_acceleration=4.0, checker=checker
        )
        assert traj.duration > 0
        assert np.allclose(traj.points[0].position, [0, 0, 2])
        assert np.allclose(traj.points[-1].position, [10, 10, 2], atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            time_parameterize([vec(0, 0, 0)], max_speed=0.0, max_acceleration=1)

    @given(
        n=st.integers(2, 6),
        vmax=st.floats(1.0, 10.0),
        amax=st.floats(0.5, 8.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_time_monotone_property(self, n, vmax, amax):
        rng = np.random.default_rng(n)
        pts = [rng.uniform(0, 20, size=3) for _ in range(n)]
        traj = time_parameterize(pts, max_speed=vmax, max_acceleration=amax)
        times = [p.time for p in traj.points]
        assert all(b >= a for a, b in zip(times[:-1], times[1:]))
        assert traj.max_speed() <= vmax + 1e-6


class TestPlannerRegistryDocs:
    def test_docstring_lists_every_planner(self):
        """The package docstring's planner list tracks PLANNERS — the
        same drift pin as the world-generator environment list (which
        once silently dropped an entry)."""
        from repro import planning

        for name in planning.PLANNERS:
            assert f"``{name}``" in planning.__doc__, (
                f"planning/__init__.py docstring is missing planner '{name}'"
            )

    def test_registry_matches_workload_registry(self):
        """The workload-facing registry in package_delivery must stay a
        view of the package-level one (same keys, same classes)."""
        from repro import planning
        from repro.core.workloads import package_delivery

        assert package_delivery._PLANNERS == planning.PLANNERS
