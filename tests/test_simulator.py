"""Integration tests for the closed-loop Simulation and QoF recorder."""

import numpy as np
import pytest

from repro.core import (
    HOVER_SPEED_THRESHOLD,
    QofRecorder,
    Simulation,
    SimulationConfig,
)
from repro.compute import JETSON_TX2, KernelModel, PlatformConfig
from repro.dynamics.state import VehicleState
from repro.world import empty_world, make_box_obstacle, vec


def _sim(world=None, cores=4, freq=2.2, dt=0.05, seed=0):
    return Simulation(
        world=world or empty_world((60, 60, 20)),
        platform=PlatformConfig(JETSON_TX2, cores, freq),
        kernel_model=KernelModel(),
        config=SimulationConfig(dt=dt, seed=seed),
    )


class TestSimulationLoop:
    def test_clock_and_scheduler_advance_together(self):
        sim = _sim()
        for _ in range(10):
            sim.step()
        assert sim.now == pytest.approx(0.5)
        assert sim.scheduler.now == pytest.approx(0.5)
        assert sim.state.time == pytest.approx(0.5)

    def test_takeoff_and_landing_cycle(self):
        sim = _sim()
        sim.flight_controller.takeoff(3.0)
        ok = sim.run_until(
            lambda s: s.flight_controller.at_target(), timeout_s=30
        )
        assert ok
        assert sim.state.position[2] == pytest.approx(3.0, abs=0.3)
        sim.flight_controller.land()
        ok = sim.run_until(
            lambda s: s.flight_controller.mode.value == "landed", timeout_s=30
        )
        assert ok

    def test_collision_detection_fails_mission(self):
        world = empty_world((60, 60, 20))
        world.add(make_box_obstacle((5, 0, 2.5), (2, 10, 5), kind="wall"))
        sim = _sim(world=world)
        sim.flight_controller.takeoff(2.5)
        sim.run_until(lambda s: s.flight_controller.at_target(), timeout_s=30)
        sim.flight_controller.fly_to(vec(10, 0, 2.5), speed=5.0)
        sim.run_until(lambda s: s.failed, timeout_s=30)
        assert sim.failed
        assert sim.failure_reason == "collision"
        assert sim.collisions >= 1

    def test_timeout_fails_mission(self):
        sim = _sim()
        sim.flight_controller.takeoff(3.0)
        ok = sim.run_until(lambda s: False, timeout_s=2.0)
        assert not ok
        assert sim.failure_reason == "timeout"

    def test_first_failure_reason_wins(self):
        sim = _sim()
        sim.fail("first")
        sim.fail("second")
        assert sim.failure_reason == "first"

    def test_battery_drains_while_airborne(self):
        sim = _sim()
        sim.flight_controller.takeoff(3.0)
        sim.run_until(lambda s: s.flight_controller.at_target(), timeout_s=30)
        soc_after_takeoff = sim.battery.soc
        end = sim.now + 20.0
        sim.run_until(lambda s: s.now >= end, timeout_s=40)
        assert sim.battery.soc < soc_after_takeoff

    def test_grounded_drone_draws_only_compute(self):
        sim = _sim()
        for _ in range(100):
            sim.step()
        report = sim.report(True)
        assert report.rotor_energy_j == 0.0
        assert report.compute_energy_j > 0.0

    def test_kernel_submission_and_latency(self):
        sim = _sim()
        done = []
        sim.submit_kernel("octomap", on_done=lambda j: done.append(j))
        sim.run_until(lambda s: bool(done), timeout_s=10)
        job = done[0]
        assert job.latency_s == pytest.approx(
            sim.kernel_runtime_s("octomap"), rel=0.25
        )

    def test_depth_capture_sees_world(self):
        world = empty_world((60, 60, 20))
        world.add(make_box_obstacle((6, 0, 2), (1, 8, 4), kind="wall"))
        sim = _sim(world=world)
        sim.vehicle.state.position = vec(0, 0, 2)
        image = sim.capture_depth()
        assert image.min_depth() < 7.0

    def test_seeded_runs_reproducible(self):
        def fly(seed):
            sim = _sim(seed=seed)
            sim.flight_controller.takeoff(3.0)
            sim.run_until(
                lambda s: s.flight_controller.at_target(), timeout_s=30
            )
            return sim.report(True)

        a = fly(7)
        b = fly(7)
        assert a.mission_time_s == b.mission_time_s
        assert a.total_energy_j == pytest.approx(b.total_energy_j)


class TestQofRecorder:
    def _state(self, t, speed):
        return VehicleState(
            position=vec(speed * t, 0, 2),
            velocity=vec(speed, 0, 0),
            time=t,
        )

    def test_distance_and_velocity(self):
        rec = QofRecorder()
        for i in range(101):
            rec.record(self._state(i * 0.1, 2.0), 300.0, 10.0, 0.1, True)
        report = rec.report(True, battery_remaining_percent=90.0)
        assert report.flight_distance_m == pytest.approx(20.0, rel=0.01)
        assert report.average_velocity_ms == pytest.approx(2.0, rel=0.02)
        assert report.mission_time_s == pytest.approx(10.0)

    def test_hover_time_counted(self):
        rec = QofRecorder()
        for i in range(100):
            rec.record(self._state(i * 0.1, 0.0), 300.0, 10.0, 0.1, True)
        report = rec.report(True, battery_remaining_percent=99.0)
        assert report.hover_time_s == pytest.approx(10.0, rel=0.01)

    def test_fast_flight_not_hovering(self):
        rec = QofRecorder()
        rec.record(self._state(0.0, HOVER_SPEED_THRESHOLD * 2), 300, 10, 0.1, True)
        assert not rec.samples[-1].hovering

    def test_energy_split(self):
        rec = QofRecorder()
        for i in range(10):
            rec.record(self._state(i * 1.0, 1.0), 200.0, 10.0, 1.0, True)
        report = rec.report(True, battery_remaining_percent=95.0)
        assert report.rotor_energy_j == pytest.approx(2000.0)
        assert report.compute_energy_j == pytest.approx(100.0)
        assert report.total_energy_j == pytest.approx(2100.0)

    def test_power_trace_structure(self):
        rec = QofRecorder()
        rec.record(self._state(0.0, 1.0), 250.0, 12.0, 0.1, True)
        trace = rec.power_trace()
        assert trace[0]["total_w"] == pytest.approx(262.0)

    def test_failure_report(self):
        rec = QofRecorder()
        rec.record(self._state(0.0, 1.0), 250.0, 12.0, 0.1, True)
        report = rec.report(
            False, battery_remaining_percent=50.0, failure_reason="collision"
        )
        assert not report.success
        assert "collision" in report.summary()

    def test_summary_format(self):
        rec = QofRecorder()
        for i in range(5):
            rec.record(self._state(i * 0.1, 1.0), 250.0, 12.0, 0.1, True)
        report = rec.report(True, battery_remaining_percent=88.0)
        text = report.summary()
        assert "OK" in text
        assert "88.0%" in text
