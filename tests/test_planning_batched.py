"""Batched-vs-scalar equivalence suite for the planning hot path.

The PR-1 OctoMap playbook applied to planning: every vectorized kernel
keeps a ``*_scalar`` reference twin, and this suite pins batched ==
scalar — bit-identical verdicts, paths, roadmaps, and RNG streams — on
seeded worlds at three map resolutions, plus property-based invariants
and seed-determinism checks (all in the CI fast lane).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perception.octomap import OctoMap
from repro.planning import (
    CollisionChecker,
    PrmPlanner,
    RrtPlanner,
    RrtStarPlanner,
    escape_point,
    escape_point_scalar,
    shortcut_path,
    shortcut_path_scalar,
)
from repro.world import AABB, vec

RESOLUTIONS = [0.25, 0.5, 1.0]


def _corridor_checker(resolution: float, conservative: bool = False):
    """A wall with a gap, plus observed-free flight space around it."""
    om = OctoMap(resolution=resolution)
    for y in np.arange(resolution / 2, 10, resolution):
        for z in np.arange(resolution / 2, 6, resolution):
            if 6.0 <= y <= 8.0:
                continue
            om.mark_occupied((5.0 + resolution / 2, y, z))
    for x in np.arange(resolution / 2, 10, 2 * resolution):
        for y in np.arange(resolution / 2, 10, 2 * resolution):
            om.mark_free((x, y, 1.0))
    checker = CollisionChecker(
        om, drone_radius=0.3, treat_unknown_as_occupied=conservative
    )
    return checker, AABB(vec(0, 0, 0), vec(10, 10, 6))


def _random_map_checker(resolution: float, seed: int, n_occupied: int = 120):
    rng = np.random.default_rng(seed)
    om = OctoMap(resolution=resolution)
    for p in rng.uniform(0, 10, size=(n_occupied, 3)):
        om.mark_occupied(p)
    for p in rng.uniform(0, 10, size=(n_occupied, 3)):
        om.mark_free(p)
    return CollisionChecker(om, drone_radius=0.3)


def _paths_equal(a, b) -> bool:
    return len(a) == len(b) and all(
        np.array_equal(p, q) for p, q in zip(a, b)
    )


# ---------------------------------------------------------------------------
# Differential: collision checker
# ---------------------------------------------------------------------------
class TestCheckerDifferential:
    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    @pytest.mark.parametrize("conservative", [False, True])
    def test_points_free_matches_scalar(self, resolution, conservative):
        checker, _ = _corridor_checker(resolution, conservative)
        pts = np.random.default_rng(1).uniform(-1, 11, size=(400, 3))
        assert np.array_equal(
            checker.points_free(pts), checker.points_free_scalar(pts)
        )

    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_segments_and_paths_match_scalar(self, resolution):
        checker, _ = _corridor_checker(resolution)
        rng = np.random.default_rng(2)
        for _ in range(10):
            wps = rng.uniform(0, 10, size=(rng.integers(2, 7), 3))
            assert checker.path_free(wps) == checker.path_free_scalar(wps)
            assert checker.first_blocked_index(
                wps
            ) == checker.first_blocked_index_scalar(wps)
            for a, b in zip(wps[:-1], wps[1:]):
                assert checker.segment_free(a, b) == checker.segment_free_scalar(a, b)

    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_random_maps_match_scalar(self, resolution):
        checker = _random_map_checker(resolution, seed=int(resolution * 100))
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 10, size=(300, 3))
        assert np.array_equal(
            checker.points_free(pts), checker.points_free_scalar(pts)
        )
        wps = rng.uniform(0, 10, size=(8, 3))
        assert checker.first_blocked_index(
            wps
        ) == checker.first_blocked_index_scalar(wps)

    def test_empty_map(self):
        om = OctoMap(resolution=0.5)
        checker = CollisionChecker(om, drone_radius=0.3)
        pts = np.random.default_rng(0).uniform(0, 10, size=(50, 3))
        assert np.all(checker.points_free(pts))
        assert np.array_equal(
            checker.points_free(pts), checker.points_free_scalar(pts)
        )
        assert checker.path_free(pts[:5]) and checker.path_free_scalar(pts[:5])

    def test_empty_map_conservative_blocks_everything(self):
        om = OctoMap(resolution=0.5)
        checker = CollisionChecker(
            om, drone_radius=0.3, treat_unknown_as_occupied=True
        )
        pts = np.random.default_rng(0).uniform(0, 10, size=(50, 3))
        assert not np.any(checker.points_free(pts))
        assert np.array_equal(
            checker.points_free(pts), checker.points_free_scalar(pts)
        )

    def test_fully_blocked_map(self):
        om = OctoMap(resolution=0.5)
        for x in np.arange(0.25, 6, 0.5):
            for y in np.arange(0.25, 6, 0.5):
                for z in np.arange(0.25, 6, 0.5):
                    om.mark_occupied((x, y, z))
        checker = CollisionChecker(om, drone_radius=0.3)
        pts = np.random.default_rng(0).uniform(0.5, 5.5, size=(50, 3))
        assert not np.any(checker.points_free(pts))
        assert np.array_equal(
            checker.points_free(pts), checker.points_free_scalar(pts)
        )
        assert checker.first_blocked_index(pts[:4]) == 1
        assert checker.first_blocked_index_scalar(pts[:4]) == 1

    def test_degenerate_paths(self):
        checker, _ = _corridor_checker(0.5)
        assert checker.path_free([]) is True
        assert checker.path_free([vec(1, 1, 1)]) is True
        assert checker.first_blocked_index([vec(1, 1, 1)]) is None
        # start == goal: a zero-length segment still samples the endpoint.
        p = vec(2, 2, 1)
        assert checker.segment_free(p, p) == checker.segment_free_scalar(p, p)
        wall = vec(5.25, 2, 2)
        assert not checker.segment_free(wall, wall)
        assert not checker.segment_free_scalar(wall, wall)

    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_escape_point_matches_scalar(self, resolution):
        checker, _ = _corridor_checker(resolution)
        stuck = vec(5.0 + resolution / 2, 3, 2)
        r1 = np.random.default_rng(7)
        r2 = np.random.default_rng(7)
        a = escape_point(checker, stuck, r1)
        b = escape_point_scalar(checker, stuck, r2)
        assert a is not None and b is not None
        assert np.array_equal(a, b)
        # The batched version must leave the generator exactly where the
        # sequential sampler would, or downstream draws diverge.
        assert r1.bit_generator.state == r2.bit_generator.state

    def test_escape_point_all_blocked_returns_none(self):
        om = OctoMap(resolution=0.5)
        for x in np.arange(-4.75, 5, 0.5):
            for y in np.arange(-4.75, 5, 0.5):
                for z in np.arange(-4.75, 5, 0.5):
                    om.mark_occupied((x, y, z))
        checker = CollisionChecker(om, drone_radius=0.3)
        r1 = np.random.default_rng(1)
        r2 = np.random.default_rng(1)
        assert escape_point(checker, vec(0, 0, 0), r1) is None
        assert escape_point_scalar(checker, vec(0, 0, 0), r2) is None
        assert r1.bit_generator.state == r2.bit_generator.state


# ---------------------------------------------------------------------------
# Regression: segment joints (the path_free / first_blocked_index contract)
# ---------------------------------------------------------------------------
class TestSegmentJointConsistency:
    def test_blocked_joint_waypoint_counted_once(self):
        """A waypoint exactly on a blocked voxel sits at the *joint* of two
        segments and is sampled by both; the off-by-one regression was
        first_blocked_index disagreeing with path_free about which leg
        (and hence whether any leg) is blocked there."""
        checker, _ = _corridor_checker(0.5)
        joint = vec(5.25, 3, 2)  # inside the believed wall
        path = [vec(2, 3, 2), joint, vec(8, 3, 2)]
        idx = checker.first_blocked_index(path)
        assert idx == 1  # the *incoming* leg is the first blocked one
        assert idx == checker.first_blocked_index_scalar(path)
        assert not checker.path_free(path)

    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_verdicts_agree_at_voxel_boundary_joints(self, resolution):
        """Joints placed exactly on voxel boundaries: path_free,
        first_blocked_index, and per-segment checks must tell one story."""
        checker, _ = _corridor_checker(resolution)
        rng = np.random.default_rng(11)
        for _ in range(20):
            # Waypoints snapped to voxel corners — worst case for
            # boundary-voxel disagreement between the query paths.
            wps = (
                rng.integers(0, int(10 / resolution), size=(4, 3)) * resolution
            ).astype(float)
            per_segment = [
                checker.segment_free(a, b) for a, b in zip(wps[:-1], wps[1:])
            ]
            assert checker.path_free(wps) == all(per_segment)
            idx = checker.first_blocked_index(wps)
            if all(per_segment):
                assert idx is None
            else:
                assert idx == per_segment.index(False) + 1


# ---------------------------------------------------------------------------
# Differential: planners
# ---------------------------------------------------------------------------
class TestPlannerDifferential:
    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_rrt_matches_scalar(self, resolution):
        checker, bounds = _corridor_checker(resolution)
        a = RrtPlanner(
            checker, bounds, step_size=1.5, max_iterations=1200, seed=4
        ).plan(vec(1, 3, 2), vec(9, 3, 2))
        b = RrtPlanner(
            checker, bounds, step_size=1.5, max_iterations=1200, seed=4
        ).plan_scalar(vec(1, 3, 2), vec(9, 3, 2))
        assert a.success == b.success
        assert _paths_equal(a.waypoints, b.waypoints)
        assert a.cost == b.cost and a.iterations == b.iterations

    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_rrt_star_matches_scalar(self, resolution):
        checker, bounds = _corridor_checker(resolution)
        a = RrtStarPlanner(
            checker, bounds, step_size=1.5, max_iterations=350, seed=4
        ).plan(vec(1, 3, 2), vec(9, 3, 2))
        b = RrtStarPlanner(
            checker, bounds, step_size=1.5, max_iterations=350, seed=4
        ).plan_scalar(vec(1, 3, 2), vec(9, 3, 2))
        assert a.success == b.success
        assert _paths_equal(a.waypoints, b.waypoints)
        assert a.cost == b.cost

    def test_rrt_matches_scalar_from_occupied_start(self):
        checker, bounds = _corridor_checker(0.5)
        stuck = vec(5.25, 3, 2)
        a = RrtPlanner(checker, bounds, max_iterations=1500, seed=3).plan(
            stuck, vec(9, 3, 2)
        )
        b = RrtPlanner(checker, bounds, max_iterations=1500, seed=3).plan_scalar(
            stuck, vec(9, 3, 2)
        )
        assert a.success == b.success
        assert _paths_equal(a.waypoints, b.waypoints)

    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_prm_roadmap_matches_scalar(self, resolution):
        checker, bounds = _corridor_checker(resolution)
        p1 = PrmPlanner(checker, bounds, n_samples=120, seed=5)
        p2 = PrmPlanner(checker, bounds, n_samples=120, seed=5)
        p1.build()
        p2.build_scalar()
        assert _paths_equal(p1._vertices, p2._vertices)
        assert p1._edges == p2._edges
        assert (
            p1.rng.bit_generator.state == p2.rng.bit_generator.state
        ), "batched sampling must consume exactly the sequential draws"

    def test_prm_build_rides_grid_index(self):
        """The batched build must actually stream candidates from the
        GridIndex (not the full-scan fallback): the roadmap outgrows the
        brute threshold, the grid mirrors the vertex set, and the
        roadmap still matches the scalar twin edge-for-edge."""
        from repro.planning.spatial_index import GridIndex

        checker, bounds = _corridor_checker(0.5)
        p1 = PrmPlanner(checker, bounds, n_samples=120, seed=5)
        p1.build()
        assert p1._grid is not None
        assert len(p1._grid) == len(p1._vertices)
        assert len(p1._vertices) > GridIndex.BRUTE_THRESHOLD, (
            "pin ineffective: roadmap small enough to brute-force, the "
            "grid-stream path never ran"
        )
        p2 = PrmPlanner(checker, bounds, n_samples=120, seed=5)
        p2.build_scalar()
        assert p2._grid is None  # scalar builds leave the index unset
        assert _paths_equal(p1._vertices, p2._vertices)
        assert p1._edges == p2._edges

    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_prm_plan_matches_scalar(self, resolution):
        checker, bounds = _corridor_checker(resolution)
        p1 = PrmPlanner(checker, bounds, n_samples=120, seed=5)
        p2 = PrmPlanner(checker, bounds, n_samples=120, seed=5)
        a = p1.plan(vec(1, 3, 2), vec(9, 3, 2))
        b = p2.plan_scalar(vec(1, 3, 2), vec(9, 3, 2))
        assert a.success == b.success
        assert _paths_equal(a.waypoints, b.waypoints)
        assert a.cost == b.cost
        assert a.iterations == b.iterations  # identical A* expansions

    def test_prm_start_equals_goal(self):
        checker, bounds = _corridor_checker(0.5)
        planner = PrmPlanner(checker, bounds, n_samples=60, seed=1)
        p = vec(2, 2, 1)
        result = planner.plan(p, p)
        reference = PrmPlanner(
            checker, bounds, n_samples=60, seed=1
        ).plan_scalar(p, p)
        assert result.success and reference.success
        assert _paths_equal(result.waypoints, reference.waypoints)

    def test_shortcut_matches_scalar(self):
        checker, _ = _corridor_checker(0.5)
        rng = np.random.default_rng(9)
        for seed in range(5):
            path = [vec(1, 1, 1)] + [
                rng.uniform(0, 10, size=3) for _ in range(6)
            ] + [vec(9, 9, 3)]
            a = shortcut_path(path, checker, attempts=60, seed=seed)
            b = shortcut_path_scalar(path, checker, attempts=60, seed=seed)
            assert _paths_equal(a, b)


# ---------------------------------------------------------------------------
# Property-based planner invariants
# ---------------------------------------------------------------------------
class TestPlannerProperties:
    @given(seed=st.integers(0, 1_000), resolution=st.sampled_from(RESOLUTIONS))
    @settings(max_examples=12, deadline=None)
    def test_rrt_paths_are_valid(self, seed, resolution):
        """Any successful plan starts/ends at the endpoints and passes the
        checker's own whole-path validation."""
        checker, bounds = _corridor_checker(resolution)
        planner = RrtPlanner(
            checker, bounds, step_size=1.5, max_iterations=800, seed=seed
        )
        start, goal = vec(1, 7, 2), vec(9, 7, 2)
        result = planner.plan(start, goal)
        if not result.success:
            return
        assert np.allclose(result.waypoints[0], start)
        assert np.allclose(result.waypoints[-1], goal)
        assert checker.path_free(result.waypoints)

    @given(seed=st.integers(0, 1_000))
    @settings(max_examples=10, deadline=None)
    def test_prm_paths_are_valid(self, seed):
        checker, bounds = _corridor_checker(0.5)
        planner = PrmPlanner(checker, bounds, n_samples=80, seed=seed)
        start, goal = vec(1, 7, 2), vec(9, 7, 2)
        result = planner.plan(start, goal)
        if not result.success:
            return
        assert np.allclose(result.waypoints[0], start)
        assert np.allclose(result.waypoints[-1], goal)
        assert checker.path_free(result.waypoints)

    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 8),
        resolution=st.sampled_from(RESOLUTIONS),
    )
    @settings(max_examples=25, deadline=None)
    def test_first_blocked_index_agrees_with_segments(
        self, seed, n, resolution
    ):
        """first_blocked_index == the first per-segment failure, and
        path_free == (no failure), on arbitrary random polylines."""
        checker = _random_map_checker(resolution, seed=seed % 17)
        wps = np.random.default_rng(seed).uniform(0, 10, size=(n, 3))
        per_segment = [
            checker.segment_free(a, b) for a, b in zip(wps[:-1], wps[1:])
        ]
        idx = checker.first_blocked_index(wps)
        assert checker.path_free(wps) == all(per_segment)
        if all(per_segment):
            assert idx is None
        else:
            assert idx == per_segment.index(False) + 1

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_shortcut_preserves_endpoints_and_validity(self, seed):
        checker, _ = _corridor_checker(0.5)
        rng = np.random.default_rng(seed)
        path = [vec(1, 1, 1)] + [
            rng.uniform(0.5, 9.5, size=3) for _ in range(5)
        ] + [vec(9, 9, 3)]
        out = shortcut_path(path, checker, attempts=40, seed=seed)
        assert np.array_equal(out[0], path[0])
        assert np.array_equal(out[-1], path[-1])
        assert len(out) <= len(path)
        if checker.path_free(path):
            assert checker.path_free(out)


# ---------------------------------------------------------------------------
# Seed determinism (CI fast lane)
# ---------------------------------------------------------------------------
class TestSeedDeterminism:
    @pytest.mark.parametrize("cls", [RrtPlanner, RrtStarPlanner])
    def test_rrt_same_seed_identical_waypoints(self, cls):
        checker, bounds = _corridor_checker(0.5)
        kwargs = dict(step_size=1.5, max_iterations=600, seed=9)
        a = cls(checker, bounds, **kwargs).plan(vec(1, 3, 2), vec(9, 3, 2))
        b = cls(checker, bounds, **kwargs).plan(vec(1, 3, 2), vec(9, 3, 2))
        assert a.success == b.success
        assert _paths_equal(a.waypoints, b.waypoints)
        assert a.cost == b.cost

    def test_rrt_different_seed_different_tree(self):
        checker, bounds = _corridor_checker(0.5)
        a = RrtPlanner(checker, bounds, seed=1, max_iterations=600).plan(
            vec(1, 3, 2), vec(9, 3, 2)
        )
        b = RrtPlanner(checker, bounds, seed=2, max_iterations=600).plan(
            vec(1, 3, 2), vec(9, 3, 2)
        )
        assert not (a.success and b.success) or not _paths_equal(
            a.waypoints, b.waypoints
        )

    def test_prm_same_seed_identical_roadmap(self):
        checker, bounds = _corridor_checker(0.5)
        p1 = PrmPlanner(checker, bounds, n_samples=150, seed=9)
        p2 = PrmPlanner(checker, bounds, n_samples=150, seed=9)
        p1.build()
        p2.build()
        assert _paths_equal(p1._vertices, p2._vertices)
        assert p1._edges == p2._edges

    def test_escape_point_deterministic(self):
        checker, _ = _corridor_checker(0.5)
        stuck = vec(5.25, 3, 2)
        a = escape_point(checker, stuck, np.random.default_rng(3))
        b = escape_point(checker, stuck, np.random.default_rng(3))
        assert a is not None and np.array_equal(a, b)
