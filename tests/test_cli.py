"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCliList:
    def test_list_prints_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "package_delivery" in out
        assert "octomap" in out
        assert "yolo" in out
        assert "urban" in out


class TestCliRun:
    def test_run_scanning(self, capsys):
        code = main(
            ["run", "scanning", "--cores", "4", "--frequency", "2.2",
             "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mission time" in out
        assert "[OK]" in out

    def test_run_with_kernel_stats(self, capsys):
        code = main(["run", "scanning", "--seed", "1", "--kernel-stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lawnmower" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "time_travel"])

    def test_invalid_operating_point_errors(self):
        with pytest.raises(ValueError):
            main(["run", "scanning", "--cores", "7"])


class TestCliParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_sweep_metric_choices(self):
        with pytest.raises(SystemExit):
            main(["sweep", "scanning", "--metric", "vibes"])
