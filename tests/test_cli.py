"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCliList:
    def test_list_prints_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "package_delivery" in out
        assert "octomap" in out
        assert "yolo" in out
        assert "urban" in out


class TestCliRun:
    def test_run_scanning(self, capsys):
        code = main(
            ["run", "scanning", "--cores", "4", "--frequency", "2.2",
             "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mission time" in out
        assert "[OK]" in out

    def test_run_with_kernel_stats(self, capsys):
        code = main(["run", "scanning", "--seed", "1", "--kernel-stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lawnmower" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "time_travel"])

    def test_invalid_operating_point_errors(self):
        with pytest.raises(ValueError):
            main(["run", "scanning", "--cores", "7"])


TINY = ["--grid", "4x2.2", "2x0.8", "--seeds", "1"]
TINY_SWEEP = ["sweep", "scanning"] + TINY
TINY_CAMPAIGN = ["campaign", "--workloads", "scanning"] + TINY


class TestCliObservability:
    def test_run_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.observability import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        code = main(
            ["run", "scanning", "--seed", "1", "--trace", str(out_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"trace: {out_path}" in out
        doc = json.loads(out_path.read_text())
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) > 10

    def test_run_without_trace_leaves_no_file(self, capsys, tmp_path):
        assert main(["run", "scanning", "--seed", "1"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_profile_prints_phase_tree(self, capsys):
        code = main(["profile", "scanning", "--seed", "1", "--metrics"])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase" in out and "self (s)" in out
        assert "mission" in out
        assert "coverage" in out
        assert "counters:" in out

    def test_profile_json_artifact(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "profile.json"
        trace_path = tmp_path / "trace.json"
        code = main(
            ["profile", "scanning", "--seed", "1",
             "--json", str(json_path), "--trace", str(trace_path)]
        )
        assert code == 0
        doc = json.loads(json_path.read_text())
        assert doc["schema"] == "repro-profile/1"
        assert doc["workload"] == "scanning"
        assert "mission" in doc["phases"]
        # Acceptance bar: self-times explain >= 90% of measured wall.
        self_sum = sum(p["self_s"] for p in doc["phases"].values())
        assert self_sum >= 0.9 * doc["phases"]["mission"]["total_s"]
        assert trace_path.exists()

    def test_campaign_profile_prints_summary(self, capsys):
        code = main(TINY_CAMPAIGN + ["--profile", "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "--- profile (2 runs) ---" in out
        assert "mission" in out
        assert "queue wait" in out
        assert "scenario cache" in out


class TestCliFleetObservability:
    def test_profile_fleet_prints_gate_subtree(self, capsys):
        code = main(["profile", "scanning", "--seed", "1", "--fleet", "2"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "profiled fleet of 2" in out
        assert "fleet.gate" in out
        assert "fleet gate:" in out
        assert "gate wait m0:scanning" in out
        assert "gate wait m1:scanning" in out
        assert "wake latency" in out

    def test_profile_fleet_json_and_trace_artifacts(self, capsys, tmp_path):
        import json

        from repro.observability import validate_chrome_trace

        json_path = tmp_path / "profile.json"
        trace_path = tmp_path / "trace.json"
        code = main(
            ["profile", "scanning", "--seed", "1", "--fleet", "2",
             "--json", str(json_path), "--trace", str(trace_path)]
        )
        assert code in (0, 1)
        doc = json.loads(json_path.read_text())
        assert doc["schema"] == "repro-profile/1"
        assert doc["fleet"] == 2
        assert "fleet.gate" in doc["phases"]
        assert set(doc["gate"]["wait"]) == {"m0:scanning", "m1:scanning"}
        assert set(doc["missions"]) >= {"m0:scanning", "m1:scanning"}
        trace_doc = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace_doc) == []
        lanes = trace_doc["otherData"]["lanes"]
        assert "fleet.gate" in lanes
        assert {"m0:scanning", "m1:scanning"} <= set(lanes)

    def test_profile_fleet_rejects_singleton(self, capsys):
        assert main(["profile", "scanning", "--fleet", "1"]) == 2
        assert "--fleet needs K >= 2" in capsys.readouterr().out

    def test_campaign_timeline_writes_campaign_trace(self, capsys, tmp_path):
        import json

        from repro.observability import validate_chrome_trace

        trace_path = tmp_path / "campaign_trace.json"
        code = main(
            ["campaign", "timeline", "--workloads", "scanning",
             "--grid", "4x2.2", "--seeds", "1", "2",
             "--fleet", "2", "--trace", str(trace_path)]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert f"timeline: {trace_path}" in out
        assert "invalid:" not in out
        doc = json.loads(trace_path.read_text())
        assert validate_chrome_trace(doc) == []
        lanes = doc["otherData"]["lanes"]
        gate_lanes = [label for label in lanes if label.endswith(".gate")]
        assert gate_lanes, lanes
        assert all(
            lanes[label]["group"] == "fleet-0" for label in gate_lanes
        )
        assert len(lanes) >= 3  # two missions + the gate lane

    def test_campaign_timeline_sequential_lanes(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "campaign_trace.json"
        code = main(
            ["campaign", "timeline", "--workloads", "scanning"]
            + TINY + ["--trace", str(trace_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"timeline: {trace_path}" in out
        doc = json.loads(trace_path.read_text())
        lanes = doc["otherData"]["lanes"]
        # One lane per sequential run, all in the campaign group.
        assert len(lanes) == 2
        assert all(v["group"] == "campaign" for v in lanes.values())

    def test_campaign_timeline_requires_trace(self):
        with pytest.raises(SystemExit):
            main(["campaign", "timeline", "--workloads", "scanning"] + TINY)

    def test_campaign_timeline_rejects_jobs(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["campaign", "timeline", "--workloads", "scanning"] + TINY
                + ["--jobs", "2", "--trace", str(tmp_path / "t.json")]
            )


class TestCliSweep:
    def test_metric_selects_printed_heatmap(self, capsys):
        """Regression: --metric used to only affect the corner-ratio line
        while the heatmaps printed a hard-coded metric list."""
        assert main(TINY_SWEEP + ["--metric", "velocity_ms"]) == 0
        out = capsys.readouterr().out
        assert "--- velocity_ms ---" in out
        assert "--- mission_time_s ---" not in out
        assert "--- energy_kj ---" not in out
        assert "corner ratio" in out and "velocity_ms" in out

    def test_all_prints_every_metric(self, capsys):
        assert main(TINY_SWEEP + ["--all"]) == 0
        out = capsys.readouterr().out
        for metric in ("velocity_ms", "mission_time_s", "energy_kj"):
            assert f"--- {metric} ---" in out

    def test_jobs_flag_accepted(self, capsys):
        assert main(TINY_SWEEP + ["--jobs", "2"]) == 0
        assert "--- mission_time_s ---" in capsys.readouterr().out


class TestCliCampaign:
    def test_campaign_runs_and_resumes(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        code = main(TINY_CAMPAIGN + ["--jobs", "2", "--out", store])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 runs (2 executed, 0 cached)" in out
        assert "--- scanning: mission_time_s ---" in out

        # Re-invoking with --resume performs zero new mission runs.
        code = main(TINY_CAMPAIGN + ["--out", store, "--resume"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 runs (0 executed, 2 cached)" in out

    def test_campaign_from_spec_file(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            CampaignSpec(
                workloads=["scanning"], grid=[(4, 2.2)], seeds=[1]
            ).to_json()
        )
        code = main(
            ["campaign", "--spec", str(spec_path), "--metric", "velocity_ms"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 runs (1 executed, 0 cached)" in out
        assert "--- scanning: velocity_ms ---" in out

    def test_spec_file_workloads_narrowing_drops_stale_kwargs(
        self, capsys, tmp_path
    ):
        """--workloads may narrow a spec file even when the file carries
        workload_kwargs for the now-excluded workloads."""
        from repro.campaign import CampaignSpec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            CampaignSpec(
                workloads=["scanning", "package_delivery"],
                grid=[(4, 2.2)],
                seeds=[1],
                workload_kwargs={"package_delivery": {"planner_name": "rrt"}},
            ).to_json()
        )
        code = main(
            ["campaign", "--spec", str(spec_path), "--workloads", "scanning"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 runs (1 executed, 0 cached)" in out
        assert "package_delivery" not in out

    def test_campaign_requires_workloads_or_spec(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--jobs", "2"])

    def test_campaign_fleet_rejects_k_below_two(self, capsys):
        # --fleet 0 (or negative, or 1) used to be accepted and silently
        # degenerate to sequential execution; it is an argparse error
        # now, matching the `repro profile --fleet` guard.
        for bad in ("0", "-1", "1"):
            with pytest.raises(SystemExit):
                main(["campaign", "--workloads", "scanning", "--fleet", bad])
            assert "--fleet needs K >= 2" in capsys.readouterr().err

    def test_bad_grid_token_rejected(self):
        with pytest.raises(ValueError, match="bad operating point"):
            main(["campaign", "--workloads", "scanning", "--grid", "turbo"])


class TestCliCampaignSharding:
    def test_shard_tokens_rejected(self, capsys):
        # 0/N (shards are 1-based), I > N, and malformed tokens are all
        # argparse errors, not tracebacks.
        for bad in ("0/2", "3/2", "2", "a/b", "1/0", ""):
            with pytest.raises(SystemExit):
                main(TINY_CAMPAIGN + ["--shard", bad, "--out", "ignored"])
            assert "shard" in capsys.readouterr().err

    def test_shard_requires_out(self, capsys):
        with pytest.raises(SystemExit):
            main(TINY_CAMPAIGN + ["--shard", "1/2"])
        assert "--out" in capsys.readouterr().err

    def test_merge_requires_out(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "merge", "--workloads", "scanning"])
        assert "--out" in capsys.readouterr().err

    def test_merge_without_shard_stores_errors(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["campaign", "merge", "--workloads", "scanning",
                 "--out", str(tmp_path)]
            )
        assert "no shard stores" in capsys.readouterr().err

    def test_two_shard_merge_smoke(self, capsys, tmp_path):
        """Shard 1/2 + shard 2/2 + merge covers the whole matrix, and a
        resume against the merged store re-executes zero missions."""
        from repro.campaign import CampaignSpec, parse_grid

        root = str(tmp_path / "stores")
        spec = CampaignSpec(
            workloads=["scanning"], grid=parse_grid(["4x2.2", "2x0.8"]),
            seeds=[1],
        )
        executed = 0
        for index in (1, 2):
            code = main(TINY_CAMPAIGN + ["--shard", f"{index}/2", "--out", root])
            out = capsys.readouterr().out
            assert code == 0
            assert f"shard {index}/2" in out
            # Shards never print partial heatmaps.
            assert "--- scanning" not in out
            executed += int(out.split("(")[-1].split(" executed")[0])
        assert executed == 2

        code = main(
            ["campaign", "merge", "--workloads", "scanning", "--out", root]
            + TINY[:3]  # --grid 4x2.2 2x0.8 (seeds default to [1])
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "complete: all 2 runs merged" in out

        merged = tmp_path / "stores" / spec.campaign_key / "merged.jsonl"
        assert merged.exists()
        code = main(TINY_CAMPAIGN + ["--out", str(merged), "--resume"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 runs (0 executed, 2 cached)" in out

    def test_incomplete_merge_reports_missing_runs(self, capsys, tmp_path):
        root = str(tmp_path / "stores")
        assert main(TINY_CAMPAIGN + ["--shard", "1/2", "--out", root]) == 0
        capsys.readouterr()
        code = main(
            ["campaign", "merge", "--workloads", "scanning", "--out", root]
            + TINY[:3]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "not yet executed" in out

    def test_merge_reads_spec_json_from_store_root(self, capsys, tmp_path):
        """The two-host recipe's last step needs no flags: merge picks up
        the spec.json the shard runs dropped into the campaign dir."""
        root = str(tmp_path / "stores")
        for index in (1, 2):
            assert (
                main(TINY_CAMPAIGN + ["--shard", f"{index}/2", "--out", root])
                == 0
            )
        capsys.readouterr()
        code = main(["campaign", "merge", "--out", root])
        out = capsys.readouterr().out
        assert code == 0
        assert "complete: all 2 runs merged" in out

    def test_merge_with_ambiguous_root_demands_spec(self, capsys, tmp_path):
        root = str(tmp_path / "stores")
        assert main(TINY_CAMPAIGN + ["--shard", "1/2", "--out", root]) == 0
        assert (
            main(
                ["campaign", "--workloads", "scanning", "--grid", "4x2.2",
                 "--seeds", "9", "--shard", "1/2", "--out", root]
            )
            == 0
        )
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["campaign", "merge", "--out", root])
        assert "multiple campaigns" in capsys.readouterr().err

    def test_unsharded_out_directory_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(TINY_CAMPAIGN + ["--out", str(tmp_path)])
        assert "is a directory" in capsys.readouterr().err


class TestCliParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_sweep_metric_choices(self):
        with pytest.raises(SystemExit):
            main(["sweep", "scanning", "--metric", "vibes"])
