"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCliList:
    def test_list_prints_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "package_delivery" in out
        assert "octomap" in out
        assert "yolo" in out
        assert "urban" in out


class TestCliRun:
    def test_run_scanning(self, capsys):
        code = main(
            ["run", "scanning", "--cores", "4", "--frequency", "2.2",
             "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mission time" in out
        assert "[OK]" in out

    def test_run_with_kernel_stats(self, capsys):
        code = main(["run", "scanning", "--seed", "1", "--kernel-stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lawnmower" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "time_travel"])

    def test_invalid_operating_point_errors(self):
        with pytest.raises(ValueError):
            main(["run", "scanning", "--cores", "7"])


TINY = ["--grid", "4x2.2", "2x0.8", "--seeds", "1"]
TINY_SWEEP = ["sweep", "scanning"] + TINY
TINY_CAMPAIGN = ["campaign", "--workloads", "scanning"] + TINY


class TestCliSweep:
    def test_metric_selects_printed_heatmap(self, capsys):
        """Regression: --metric used to only affect the corner-ratio line
        while the heatmaps printed a hard-coded metric list."""
        assert main(TINY_SWEEP + ["--metric", "velocity_ms"]) == 0
        out = capsys.readouterr().out
        assert "--- velocity_ms ---" in out
        assert "--- mission_time_s ---" not in out
        assert "--- energy_kj ---" not in out
        assert "corner ratio" in out and "velocity_ms" in out

    def test_all_prints_every_metric(self, capsys):
        assert main(TINY_SWEEP + ["--all"]) == 0
        out = capsys.readouterr().out
        for metric in ("velocity_ms", "mission_time_s", "energy_kj"):
            assert f"--- {metric} ---" in out

    def test_jobs_flag_accepted(self, capsys):
        assert main(TINY_SWEEP + ["--jobs", "2"]) == 0
        assert "--- mission_time_s ---" in capsys.readouterr().out


class TestCliCampaign:
    def test_campaign_runs_and_resumes(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        code = main(TINY_CAMPAIGN + ["--jobs", "2", "--out", store])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 runs (2 executed, 0 cached)" in out
        assert "--- scanning: mission_time_s ---" in out

        # Re-invoking with --resume performs zero new mission runs.
        code = main(TINY_CAMPAIGN + ["--out", store, "--resume"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 runs (0 executed, 2 cached)" in out

    def test_campaign_from_spec_file(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            CampaignSpec(
                workloads=["scanning"], grid=[(4, 2.2)], seeds=[1]
            ).to_json()
        )
        code = main(
            ["campaign", "--spec", str(spec_path), "--metric", "velocity_ms"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 runs (1 executed, 0 cached)" in out
        assert "--- scanning: velocity_ms ---" in out

    def test_spec_file_workloads_narrowing_drops_stale_kwargs(
        self, capsys, tmp_path
    ):
        """--workloads may narrow a spec file even when the file carries
        workload_kwargs for the now-excluded workloads."""
        from repro.campaign import CampaignSpec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            CampaignSpec(
                workloads=["scanning", "package_delivery"],
                grid=[(4, 2.2)],
                seeds=[1],
                workload_kwargs={"package_delivery": {"planner_name": "rrt"}},
            ).to_json()
        )
        code = main(
            ["campaign", "--spec", str(spec_path), "--workloads", "scanning"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 runs (1 executed, 0 cached)" in out
        assert "package_delivery" not in out

    def test_campaign_requires_workloads_or_spec(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--jobs", "2"])

    def test_bad_grid_token_rejected(self):
        with pytest.raises(ValueError, match="bad operating point"):
            main(["campaign", "--workloads", "scanning", "--grid", "turbo"])


class TestCliParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_sweep_metric_choices(self):
        with pytest.raises(SystemExit):
            main(["sweep", "scanning", "--metric", "vibes"])
