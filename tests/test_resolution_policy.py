"""Tests for the OctoMap resolution policies (Fig. 19 machinery)."""

import numpy as np
import pytest

from repro.core.api import make_simulation
from repro.core.workloads import PackageDeliveryWorkload
from repro.core.workloads.base import OccupancyPipeline
from repro.core.workloads.resolution_policy import (
    COARSE_RESOLUTION,
    FINE_RESOLUTION,
    belief_density_policy,
    density_policy,
    static_policy,
)
from repro.world import campus_world, empty_world, make_box_obstacle, vec


def _sim_with_pipeline(world=None, resolution=0.5):
    workload = PackageDeliveryWorkload(seed=1, world=world or empty_world((40, 40, 12)))
    sim = make_simulation(workload, cores=4, frequency_ghz=2.2, seed=1)
    pipeline = OccupancyPipeline(sim, resolution=resolution)
    return sim, pipeline


class TestStaticPolicy:
    def test_constant(self):
        sim, pipeline = _sim_with_pipeline()
        policy = static_policy(0.25)
        for _ in range(3):
            assert policy(sim, pipeline) == 0.25


class TestDensityPolicy:
    def test_open_space_uses_coarse(self):
        sim, pipeline = _sim_with_pipeline(world=empty_world((60, 60, 12)))
        policy = density_policy()
        assert policy(sim, pipeline) == COARSE_RESOLUTION

    def test_dense_surroundings_use_fine(self):
        world = empty_world((40, 40, 12))
        # A dense cluster around the vehicle's position.
        for dx in (-4, 0, 4):
            for dy in (-4, 0, 4):
                world.add(
                    make_box_obstacle((dx, dy, 3), (2.5, 2.5, 6), kind="wall")
                )
        sim, pipeline = _sim_with_pipeline(world=world)
        sim.vehicle.state.position = vec(2, 2, 3)
        policy = density_policy()
        assert policy(sim, pipeline) == FINE_RESOLUTION

    def test_lookahead_switches_before_dense_region(self):
        """Approaching the campus building with the goal inside, the
        policy must pick fine *before* arrival (the goal-direction probe)."""
        world = campus_world(seed=3)
        sim, pipeline = _sim_with_pipeline(world=world)
        sim.vehicle.state.position = vec(2.0, -4.0, 2.0)  # ~13 m from face
        sim.current_goal = np.array([19.5, -4.0, 2.0])
        policy = density_policy()
        assert policy(sim, pipeline) == FINE_RESOLUTION

    def test_hysteresis_prevents_flip_flop(self):
        world = campus_world(seed=3)
        sim, pipeline = _sim_with_pipeline(world=world)
        policy = density_policy()
        sim.vehicle.state.position = vec(11.0, -4.0, 2.0)  # near building
        assert policy(sim, pipeline) == FINE_RESOLUTION
        # Moderate density (below the switch-on threshold but above the
        # switch-off one) must NOT flip back to coarse.
        sim.vehicle.state.position = vec(-30.0, -4.0, 2.0)  # near trees
        assert policy(sim, pipeline) == FINE_RESOLUTION
        # Truly open space: eventually coarse again.
        sim.vehicle.state.position = vec(4.0, -4.0, 2.0)
        assert policy(sim, pipeline) == COARSE_RESOLUTION


class TestBeliefDensityPolicy:
    def test_empty_belief_uses_coarse(self):
        sim, pipeline = _sim_with_pipeline()
        policy = belief_density_policy()
        assert policy(sim, pipeline) == COARSE_RESOLUTION

    def test_occupied_belief_triggers_fine(self):
        sim, pipeline = _sim_with_pipeline()
        om = pipeline.octomap
        rng = np.random.default_rng(0)
        for p in rng.uniform(-4, 4, size=(600, 3)):
            om.mark_occupied(p + np.array([0, 0, 4.0]))
        sim.vehicle.state.position = vec(0, 0, 4)
        policy = belief_density_policy(occupied_threshold=0.001)
        assert policy(sim, pipeline) == FINE_RESOLUTION
