"""Tests for the campaign engine: spec expansion, store, runner, aggregation."""

import json

import pytest

from repro.analysis import SweepResult, sweep_operating_points
from repro.campaign import (
    CampaignRunError,
    CampaignSpec,
    CampaignStore,
    RunSpec,
    aggregate_sweep,
    run_campaign,
    success_table,
)
from repro.campaign.spec import parse_grid

#: A mission configuration that finishes in ~0.1 s and succeeds.
TINY_KWARGS = {"area_width": 40.0, "area_length": 24.0}


def tiny_spec(grid=((4, 2.2), (2, 0.8)), seeds=(1, 2)) -> CampaignSpec:
    return CampaignSpec(
        workloads=["scanning"],
        grid=list(grid),
        seeds=list(seeds),
        workload_kwargs={"scanning": dict(TINY_KWARGS)},
    )


class TestSpecExpansion:
    def test_deterministic_and_stably_ordered(self):
        spec = CampaignSpec(
            workloads=["scanning", "mapping"],
            grid=[(2, 0.8), (4, 2.2)],
            seeds=[1, 2],
            depth_noise_levels=[0.0, 0.5],
        )
        runs_a = spec.expand()
        runs_b = spec.expand()
        assert [r.run_key for r in runs_a] == [r.run_key for r in runs_b]
        # workload (outer) -> grid -> noise -> seed (inner).
        assert [r.workload for r in runs_a[:8]] == ["scanning"] * 8
        assert (runs_a[0].cores, runs_a[0].frequency_ghz) == (2, 0.8)
        assert [r.seed for r in runs_a[:2]] == [1, 2]
        assert runs_a[1].depth_noise_std == 0.0
        assert runs_a[2].depth_noise_std == 0.5

    def test_run_keys_collision_free(self):
        spec = CampaignSpec(
            workloads=["scanning", "mapping", "package_delivery"],
            seeds=[1, 2, 3],
            depth_noise_levels=[0.0, 0.25],
        )
        keys = [r.run_key for r in spec.expand()]
        assert len(keys) == spec.run_count == 3 * 9 * 2 * 3
        assert len(set(keys)) == len(keys)
        assert all(len(k) == 16 for k in keys)

    def test_duplicate_seed_rejected(self):
        spec = CampaignSpec(workloads=["scanning"], seeds=[1, 1])
        with pytest.raises(ValueError, match="duplicate run"):
            spec.expand()

    def test_key_independent_of_kwarg_order(self):
        a = RunSpec("scanning", 4, 2.2, 1, workload_kwargs={"a": 1, "b": 2})
        b = RunSpec("scanning", 4, 2.2, 1, workload_kwargs={"b": 2, "a": 1})
        assert a.run_key == b.run_key

    def test_key_normalizes_numeric_types(self):
        assert (
            RunSpec("scanning", 4, 2, 1).run_key
            == RunSpec("scanning", 4, 2.0, 1).run_key
        )

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="time_travel"):
            CampaignSpec(workloads=["time_travel"])

    def test_stray_workload_kwargs_rejected(self):
        with pytest.raises(KeyError, match="mapping"):
            CampaignSpec(
                workloads=["scanning"], workload_kwargs={"mapping": {}}
            )

    def test_json_round_trip(self):
        spec = tiny_spec()
        clone = CampaignSpec.from_json(spec.to_json())
        assert clone == spec
        assert [r.run_key for r in clone.expand()] == [
            r.run_key for r in spec.expand()
        ]

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(tiny_spec().to_json())
        assert CampaignSpec.from_file(path) == tiny_spec()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(KeyError, match="gridd"):
            CampaignSpec.from_dict({"workloads": ["scanning"], "gridd": []})

    def test_parse_grid(self):
        assert parse_grid(["2x0.8", "4x2.2"]) == [(2, 0.8), (4, 2.2)]
        with pytest.raises(ValueError, match="bad operating point"):
            parse_grid(["fast"])


class TestStore:
    def _record(self, key, t=1.0):
        return {"run_key": key, "status": "ok", "report": {"mission_time_s": t}}

    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = CampaignStore(path)
        store.add(self._record("aaa"))
        store.add(self._record("bbb"))
        reloaded = CampaignStore(path)
        assert len(reloaded) == 2
        assert "aaa" in reloaded and "bbb" in reloaded
        assert reloaded.get("bbb")["report"]["mission_time_s"] == 1.0

    def test_last_write_wins(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = CampaignStore(path)
        store.add(self._record("aaa", t=1.0))
        store.add(self._record("aaa", t=2.0))
        assert CampaignStore(path).get("aaa")["report"]["mission_time_s"] == 2.0

    def test_truncated_tail_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = CampaignStore(path)
        store.add(self._record("aaa"))
        with open(path, "a") as fh:
            fh.write('{"run_key": "bbb", "status"')  # killed mid-write
        reloaded = CampaignStore(path)
        assert reloaded.keys() == ["aaa"]
        assert reloaded.skipped_lines == 1

    def test_fresh_discards_existing(self, tmp_path):
        path = tmp_path / "store.jsonl"
        CampaignStore(path).add(self._record("aaa"))
        assert len(CampaignStore(path, fresh=True)) == 0
        assert len(CampaignStore(path)) == 0

    def test_record_needs_key(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignStore(tmp_path / "s.jsonl").add({"status": "ok"})


class TestRunner:
    def test_parallel_equals_serial(self, tmp_path):
        """jobs=2 must produce byte-identical aggregated results to jobs=1."""
        spec = tiny_spec()
        serial = run_campaign(spec, jobs=1)
        store = CampaignStore(tmp_path / "parallel.jsonl")
        parallel = run_campaign(spec, jobs=2, store=store)
        assert serial.executed == parallel.executed == 4
        agg_serial = aggregate_sweep(serial.records, workload="scanning")
        agg_parallel = aggregate_sweep(parallel.records, workload="scanning")
        assert agg_serial == agg_parallel
        assert json.dumps(
            [vars(c) for c in agg_serial.cells], sort_keys=True
        ) == json.dumps([vars(c) for c in agg_parallel.cells], sort_keys=True)
        # ...and both match the legacy sweep wrapper exactly.
        legacy = sweep_operating_points(
            "scanning",
            grid=list(spec.grid),
            seeds=tuple(spec.seeds),
            workload_kwargs=dict(TINY_KWARGS),
        )
        assert legacy == agg_serial

    def test_records_in_expansion_order(self, tmp_path):
        spec = tiny_spec()
        expected = [r.run_key for r in spec.expand()]
        campaign = run_campaign(spec, jobs=2)
        assert [r["run_key"] for r in campaign.records] == expected

    def test_resume_runs_only_missing_rows(self, tmp_path):
        path = tmp_path / "store.jsonl"
        spec = tiny_spec()
        first = run_campaign(spec, jobs=1, store=CampaignStore(path))
        assert first.executed == 4 and first.cached == 0

        # Simulate a campaign killed after two missions: keep only the
        # first two store lines.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        resumed = run_campaign(spec, jobs=1, store=CampaignStore(path))
        assert resumed.executed == 2 and resumed.cached == 2
        assert aggregate_sweep(
            resumed.records, workload="scanning"
        ) == aggregate_sweep(first.records, workload="scanning")

        # A completed store resumes with zero new mission runs.
        done = run_campaign(spec, jobs=1, store=CampaignStore(path))
        assert done.executed == 0 and done.cached == 4

    def test_extending_spec_reuses_cache(self, tmp_path):
        path = tmp_path / "store.jsonl"
        run_campaign(tiny_spec(seeds=(1,)), store=CampaignStore(path))
        extended = run_campaign(
            tiny_spec(seeds=(1, 2)), store=CampaignStore(path)
        )
        assert extended.cached == 2 and extended.executed == 2

    def test_failed_run_recorded_not_fatal(self):
        spec = CampaignSpec(
            workloads=["scanning", "mapping"],
            grid=[(4, 2.2)],
            seeds=[1],
            workload_kwargs={
                "scanning": dict(TINY_KWARGS),
                # Invalid: the constructor raises ValueError at run time.
                "mapping": {"coverage_target": 2.0},
            },
        )
        campaign = run_campaign(spec, jobs=1)
        assert campaign.failed == 1
        assert campaign.records[0]["status"] == "ok"
        assert campaign.records[1]["status"] == "error"
        assert "coverage target" in campaign.records[1]["error"]
        # The healthy workload still aggregates...
        assert aggregate_sweep(campaign.records, workload="scanning")
        # ...while the broken one raises a named error.
        with pytest.raises(CampaignRunError, match="mapping"):
            aggregate_sweep(campaign.records, workload="mapping")

    def test_resume_retries_failed_runs(self, tmp_path):
        """Error rows are not cache hits: --resume re-executes them."""
        path = tmp_path / "store.jsonl"
        bad = CampaignSpec(
            workloads=["mapping"],
            grid=[(4, 2.2)],
            seeds=[1],
            workload_kwargs={"mapping": {"coverage_target": 2.0}},
        )
        first = run_campaign(bad, store=CampaignStore(path))
        assert first.failed == 1 and first.executed == 1
        retried = run_campaign(bad, store=CampaignStore(path))
        assert retried.executed == 1 and retried.cached == 0

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            run_campaign(tiny_spec(), jobs=0)


class TestSweepWrapper:
    def test_duplicate_seeds_tolerated(self):
        """The legacy sweep loop accepted repeated seeds; the wrapper
        dedupes them (identical floats, missions being deterministic)."""
        once = sweep_operating_points(
            "scanning",
            grid=[(4, 2.2)],
            seeds=(1,),
            workload_kwargs=dict(TINY_KWARGS),
        )
        doubled = sweep_operating_points(
            "scanning",
            grid=[(4, 2.2), (4, 2.2)],
            seeds=(1, 1),
            workload_kwargs=dict(TINY_KWARGS),
        )
        assert doubled == once


class TestAggregate:
    def test_aggregate_matches_legacy_sweep_shape(self):
        campaign = run_campaign(tiny_spec(seeds=(1,)), jobs=1)
        result = aggregate_sweep(campaign.records, workload="scanning")
        assert isinstance(result, SweepResult)
        assert result.workload == "scanning"
        cell = result.cell(4, 2.2)
        assert cell.mission_time_s > 0
        assert cell.success_rate == 1.0
        assert "area_m2" in cell.extra

    def test_noise_filter(self):
        spec = CampaignSpec(
            workloads=["scanning"],
            grid=[(4, 2.2)],
            seeds=[1],
            depth_noise_levels=[0.0, 0.5],
            workload_kwargs={"scanning": dict(TINY_KWARGS)},
        )
        campaign = run_campaign(spec, jobs=1)
        clean = aggregate_sweep(
            campaign.records, workload="scanning", depth_noise_std=0.0
        )
        noisy = aggregate_sweep(
            campaign.records, workload="scanning", depth_noise_std=0.5
        )
        assert len(clean.cells) == len(noisy.cells) == 1

    def test_no_records_raises(self):
        with pytest.raises(ValueError, match="no campaign records"):
            aggregate_sweep([], workload="scanning")

    def test_success_table_rows(self):
        campaign = run_campaign(tiny_spec(seeds=(1,)), jobs=1)
        rows = success_table(campaign.records)
        assert len(rows) == 2
        assert {r["workload"] for r in rows} == {"scanning"}
        assert all(r["status"] == "ok" for r in rows)
        assert all(r["energy_kj"] > 0 for r in rows)
