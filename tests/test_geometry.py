"""Unit and property tests for repro.world.geometry."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.world.geometry import (
    AABB,
    Pose,
    Ray,
    batch_ray_aabbs,
    path_length,
    ray_aabb_intersection,
    rotation_matrix,
    segment_intersects_aabb,
    unit,
    vec,
    wrap_angle,
    yaw_rotation,
)

finite = st.floats(-100, 100, allow_nan=False, allow_infinity=False)
positive = st.floats(0.1, 50, allow_nan=False, allow_infinity=False)


class TestVecHelpers:
    def test_vec_builds_float_array(self):
        v = vec(1, 2, 3)
        assert v.dtype == float
        assert v.shape == (3,)

    def test_unit_normalizes(self):
        u = unit(vec(3, 4, 0))
        assert np.allclose(u, [0.6, 0.8, 0.0])

    def test_unit_rejects_zero(self):
        with pytest.raises(ValueError):
            unit(vec(0, 0, 0))


class TestAABB:
    def test_from_center(self):
        box = AABB.from_center((0, 0, 5), (2, 4, 10))
        assert np.allclose(box.lo, [-1, -2, 0])
        assert np.allclose(box.hi, [1, 2, 10])

    def test_rejects_inverted_corners(self):
        with pytest.raises(ValueError):
            AABB(vec(1, 0, 0), vec(0, 0, 0))

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            AABB.from_center((0, 0, 0), (-1, 1, 1))

    def test_contains_boundary(self):
        box = AABB(vec(0, 0, 0), vec(1, 1, 1))
        assert box.contains(vec(0, 0, 0))
        assert box.contains(vec(1, 1, 1))
        assert not box.contains(vec(1.1, 0.5, 0.5))

    def test_volume(self):
        box = AABB.from_center((0, 0, 0), (2, 3, 4))
        assert box.volume == pytest.approx(24.0)

    def test_inflate_grows_every_face(self):
        box = AABB.from_center((0, 0, 0), (2, 2, 2))
        grown = box.inflate(0.5)
        assert np.allclose(grown.size, [3, 3, 3])
        assert np.allclose(grown.center, box.center)

    def test_intersects_overlap_and_touch(self):
        a = AABB(vec(0, 0, 0), vec(1, 1, 1))
        b = AABB(vec(0.5, 0.5, 0.5), vec(2, 2, 2))
        c = AABB(vec(1, 0, 0), vec(2, 1, 1))  # face touch
        d = AABB(vec(5, 5, 5), vec(6, 6, 6))
        assert a.intersects(b)
        assert a.intersects(c)
        assert not a.intersects(d)

    def test_distance_to_inside_is_zero(self):
        box = AABB(vec(0, 0, 0), vec(2, 2, 2))
        assert box.distance_to(vec(1, 1, 1)) == 0.0

    def test_distance_to_outside(self):
        box = AABB(vec(0, 0, 0), vec(1, 1, 1))
        assert box.distance_to(vec(4, 0.5, 0.5)) == pytest.approx(3.0)

    def test_corners_count(self):
        box = AABB(vec(0, 0, 0), vec(1, 2, 3))
        corners = box.corners()
        assert corners.shape == (8, 3)
        assert {tuple(c) for c in corners} == {
            (x, y, z) for x in (0, 1) for y in (0, 2) for z in (0, 3)
        }

    @given(
        cx=finite, cy=finite, cz=finite,
        sx=positive, sy=positive, sz=positive,
        m=st.floats(0, 10, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_inflate_property(self, cx, cy, cz, sx, sy, sz, m):
        box = AABB.from_center((cx, cy, cz), (sx, sy, sz))
        grown = box.inflate(m)
        assert np.all(grown.lo <= box.lo + 1e-9)
        assert np.all(grown.hi >= box.hi - 1e-9)


class TestRayIntersection:
    def test_head_on_hit(self):
        box = AABB(vec(5, -1, -1), vec(7, 1, 1))
        hit = ray_aabb_intersection(Ray(vec(0, 0, 0), vec(1, 0, 0)), box)
        assert hit is not None
        t_near, t_far = hit
        assert t_near == pytest.approx(5.0)
        assert t_far == pytest.approx(7.0)

    def test_miss(self):
        box = AABB(vec(5, 5, 5), vec(6, 6, 6))
        assert ray_aabb_intersection(Ray(vec(0, 0, 0), vec(1, 0, 0)), box) is None

    def test_box_behind_origin(self):
        box = AABB(vec(-7, -1, -1), vec(-5, 1, 1))
        assert ray_aabb_intersection(Ray(vec(0, 0, 0), vec(1, 0, 0)), box) is None

    def test_origin_inside_box(self):
        box = AABB(vec(-1, -1, -1), vec(1, 1, 1))
        hit = ray_aabb_intersection(Ray(vec(0, 0, 0), vec(1, 0, 0)), box)
        assert hit is not None
        assert hit[0] == pytest.approx(0.0)
        assert hit[1] == pytest.approx(1.0)

    def test_parallel_ray_outside_slab(self):
        box = AABB(vec(0, 0, 0), vec(1, 1, 1))
        ray = Ray(vec(-1, 5, 0.5), vec(1, 0, 0))  # y=5 never enters slab
        assert ray_aabb_intersection(ray, box) is None

    def test_diagonal_hit(self):
        box = AABB(vec(1, 1, 1), vec(2, 2, 2))
        ray = Ray(vec(0, 0, 0), vec(1, 1, 1))
        hit = ray_aabb_intersection(ray, box)
        assert hit is not None
        assert hit[0] == pytest.approx(math.sqrt(3), rel=1e-6)


class TestSegmentIntersection:
    def test_crossing_segment(self):
        box = AABB(vec(0, 0, 0), vec(1, 1, 1))
        assert segment_intersects_aabb(vec(-1, 0.5, 0.5), vec(2, 0.5, 0.5), box)

    def test_short_segment_stops_before_box(self):
        box = AABB(vec(10, 0, 0), vec(11, 1, 1))
        assert not segment_intersects_aabb(vec(0, 0.5, 0.5), vec(5, 0.5, 0.5), box)

    def test_degenerate_segment_inside(self):
        box = AABB(vec(0, 0, 0), vec(1, 1, 1))
        assert segment_intersects_aabb(vec(0.5, 0.5, 0.5), vec(0.5, 0.5, 0.5), box)

    def test_degenerate_segment_outside(self):
        box = AABB(vec(0, 0, 0), vec(1, 1, 1))
        assert not segment_intersects_aabb(vec(5, 5, 5), vec(5, 5, 5), box)


class TestBatchRayCast:
    def test_matches_scalar_raycast(self):
        box_lo = np.array([[5.0, -1.0, -1.0]])
        box_hi = np.array([[7.0, 1.0, 1.0]])
        dirs = np.array([[1.0, 0, 0], [0, 1.0, 0], [-1.0, 0, 0]])
        dists = batch_ray_aabbs(vec(0, 0, 0), dirs, box_lo, box_hi, 100.0)
        assert dists[0] == pytest.approx(5.0)
        assert dists[1] == pytest.approx(100.0)
        assert dists[2] == pytest.approx(100.0)

    def test_no_boxes_returns_max_range(self):
        dirs = np.array([[1.0, 0, 0]])
        dists = batch_ray_aabbs(
            vec(0, 0, 0), dirs, np.zeros((0, 3)), np.zeros((0, 3)), 50.0
        )
        assert dists[0] == 50.0

    def test_nearest_of_many_boxes_wins(self):
        los = np.array([[5.0, -1, -1], [2.0, -1, -1]])
        his = np.array([[6.0, 1, 1], [3.0, 1, 1]])
        dirs = np.array([[1.0, 0, 0]])
        dists = batch_ray_aabbs(vec(0, 0, 0), dirs, los, his, 100.0)
        assert dists[0] == pytest.approx(2.0)

    @given(
        dx=st.floats(-1, 1), dy=st.floats(-1, 1), dz=st.floats(-1, 1)
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_agrees_with_single(self, dx, dy, dz):
        d = np.array([dx, dy, dz])
        if np.linalg.norm(d) < 1e-3:
            return
        d = d / np.linalg.norm(d)
        box = AABB(vec(2, -3, -3), vec(4, 3, 3))
        scalar = ray_aabb_intersection(Ray(vec(0, 0, 0), d), box)
        batch = batch_ray_aabbs(
            vec(0, 0, 0), d[None, :], box.lo[None, :], box.hi[None, :], 100.0
        )[0]
        if scalar is None:
            assert batch == pytest.approx(100.0)
        else:
            assert batch == pytest.approx(scalar[0], abs=1e-6)


class TestRotations:
    def test_yaw_rotation_quarter_turn(self):
        r = yaw_rotation(math.pi / 2)
        assert np.allclose(r @ vec(1, 0, 0), vec(0, 1, 0), atol=1e-12)

    def test_rotation_matrix_is_orthonormal(self):
        r = rotation_matrix(0.5, 0.3, 0.1)
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.isclose(np.linalg.det(r), 1.0)

    def test_zero_rotation_is_identity(self):
        assert np.allclose(rotation_matrix(0, 0, 0), np.eye(3))

    @given(st.floats(-20, 20, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_wrap_angle_range(self, theta):
        w = wrap_angle(theta)
        assert -math.pi < w <= math.pi + 1e-12
        # Same direction: cos/sin preserved.
        assert math.cos(w) == pytest.approx(math.cos(theta), abs=1e-9)
        assert math.sin(w) == pytest.approx(math.sin(theta), abs=1e-9)


class TestPoseAndPath:
    def test_pose_forward_vector(self):
        p = Pose(vec(0, 0, 0), yaw=math.pi / 2)
        assert np.allclose(p.forward(), vec(0, 1, 0), atol=1e-12)

    def test_pose_distance(self):
        a = Pose(vec(0, 0, 0))
        b = Pose(vec(3, 4, 0))
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_path_length_simple(self):
        pts = [vec(0, 0, 0), vec(1, 0, 0), vec(1, 1, 0)]
        assert path_length(pts) == pytest.approx(2.0)

    def test_path_length_degenerate(self):
        assert path_length([]) == 0.0
        assert path_length([vec(1, 2, 3)]) == 0.0
