"""Cross-cutting integration tests: the paper's headline compute effects.

These tests verify the *mechanisms* Section V identifies, end to end on
small fast worlds, rather than reproducing full-figure magnitudes (the
benchmarks do that):

1. faster compute -> higher Eq.-2 velocity bound (max-velocity effect);
2. faster compute -> less hover during planning (hover-time effect);
3. faster missions -> less total energy (rotors dominate);
4. the compute subsystem draws a small fraction of total power.
"""

import numpy as np
import pytest

from repro.core.api import make_simulation
from repro.core.workloads import MappingWorkload, PackageDeliveryWorkload
from repro.world import empty_world, make_box_obstacle

# Closed-loop missions at multiple compute operating points: minutes of
# simulated flight per fixture — nightly lane, not the CI fast lane.
pytestmark = pytest.mark.slow


def _mini_city():
    world = empty_world((50, 50, 12), name="mini-city")
    world.add(make_box_obstacle((0, 0, 4), (6, 6, 8), kind="building"))
    return world


@pytest.fixture(scope="module")
def delivery_runs():
    """One PD mission per operating-point corner (module-cached)."""
    results = {}
    for cores, freq in [(4, 2.2), (2, 0.8)]:
        workload = PackageDeliveryWorkload(
            world=_mini_city(), goal=np.array([18.0, 18.0, 3.0]), seed=2
        )
        make_simulation(workload, cores=cores, frequency_ghz=freq, seed=2)
        results[(cores, freq)] = (workload, workload.run())
    return results


class TestComputeEffects:
    def test_both_corners_deliver(self, delivery_runs):
        for (_, report) in delivery_runs.values():
            assert report.success

    def test_velocity_bound_effect(self, delivery_runs):
        fast_w, _ = delivery_runs[(4, 2.2)]
        slow_w, _ = delivery_runs[(2, 0.8)]
        assert (
            fast_w.pipeline.allowed_velocity()
            > slow_w.pipeline.allowed_velocity()
        )

    def test_mission_time_effect(self, delivery_runs):
        _, fast = delivery_runs[(4, 2.2)]
        _, slow = delivery_runs[(2, 0.8)]
        assert fast.mission_time_s < slow.mission_time_s

    def test_energy_effect(self, delivery_runs):
        _, fast = delivery_runs[(4, 2.2)]
        _, slow = delivery_runs[(2, 0.8)]
        assert fast.total_energy_j < slow.total_energy_j

    def test_rotors_dominate_power(self, delivery_runs):
        """Section V-B: compute is <5% of total system power."""
        for _, report in delivery_runs.values():
            assert report.average_compute_power_w < (
                0.10 * report.average_rotor_power_w
            )

    def test_more_map_updates_on_faster_platform(self, delivery_runs):
        fast_w, fast = delivery_runs[(4, 2.2)]
        slow_w, slow = delivery_runs[(2, 0.8)]
        fast_rate = fast.extra["map_updates"] / fast.mission_time_s
        slow_rate = slow.extra["map_updates"] / slow.mission_time_s
        assert fast_rate > slow_rate * 1.5


class TestHoverTimeEffect:
    def test_mapping_hover_shrinks_with_compute(self):
        """Frontier exploration dominates hover; faster compute cuts it."""
        world = empty_world((30, 30, 10), name="arena")
        world.add(make_box_obstacle((5, 5, 2), (3, 3, 4), kind="crate"))
        hovers = {}
        for cores, freq in [(4, 2.2), (2, 0.8)]:
            workload = MappingWorkload(
                world=world, coverage_target=0.4, mapping_ceiling=8.0, seed=1
            )
            make_simulation(workload, cores=cores, frequency_ghz=freq, seed=1)
            report = workload.run()
            assert report.success
            hovers[(cores, freq)] = report.hover_time_s
        assert hovers[(4, 2.2)] < hovers[(2, 0.8)]
