"""Property tests: GridIndex answers == brute-force scans, bit-for-bit.

The grid-bucket index (``repro.planning.spatial_index``) must be an
*exact* drop-in for the full vectorized scans it replaces inside the
sampling planners — same nearest id (including the first-minimum
tie-break) and the same ascending near-ids, on every query, at every
tree size.  Hypothesis drives random point sets, targets, radii, and
incremental appends against the ``*_bruteforce`` reference twins.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planning.spatial_index import (
    GridIndex,
    near_ids_bruteforce,
    nearest_bruteforce,
)

# Coordinates snapped to a coarse lattice so duplicate points and
# exact-boundary distances actually occur instead of being measure-zero.
coord = st.integers(min_value=-40, max_value=40).map(lambda v: v * 0.5)
point = st.tuples(coord, coord, coord)
cell_size = st.sampled_from([0.4, 1.0, 1.5, 3.0, 7.0])


def _build(points, cell):
    index = GridIndex(cell_size=cell)
    arr = np.asarray(points, dtype=float).reshape(-1, 3)
    for row in arr:
        index.insert(row)
    return index, arr


class TestNearest:
    @given(pts=st.lists(point, min_size=1, max_size=200), target=point,
           cell=cell_size)
    @settings(max_examples=150, deadline=None)
    def test_matches_bruteforce(self, pts, target, cell):
        index, arr = _build(pts, cell)
        t = np.asarray(target, dtype=float)
        assert index.nearest(arr, t) == nearest_bruteforce(arr, t)

    @given(pts=st.lists(point, min_size=1, max_size=120), cell=cell_size)
    @settings(max_examples=60, deadline=None)
    def test_tie_break_is_first_minimum(self, pts, cell):
        # Duplicate every point: ties are guaranteed, and the index must
        # still return the lowest id, exactly like np.argmin.
        doubled = list(pts) + list(pts)
        index, arr = _build(doubled, cell)
        for target in (doubled[0], (0.0, 0.0, 0.0)):
            t = np.asarray(target, dtype=float)
            assert index.nearest(arr, t) == nearest_bruteforce(arr, t)

    def test_empty_index_returns_none(self):
        index = GridIndex(cell_size=1.0)
        target = np.zeros(3)
        assert index.nearest(np.zeros((0, 3)), target) is None

    def test_far_target_falls_back_to_bruteforce(self):
        # A target many empty rings away triggers the MAX_RING bail-out;
        # the answer must still be exact.
        rng = np.random.default_rng(0)
        arr = rng.uniform(0.0, 4.0, size=(100, 3))
        index, arr = _build(arr, 0.5)
        t = np.array([500.0, -300.0, 900.0])
        assert index.nearest(arr, t) == nearest_bruteforce(arr, t)


class TestNearIds:
    @given(pts=st.lists(point, min_size=1, max_size=200), target=point,
           radius=st.sampled_from([0.0, 0.5, 1.0, 2.5, 6.0, 40.0]),
           cell=cell_size)
    @settings(max_examples=150, deadline=None)
    def test_matches_bruteforce(self, pts, target, radius, cell):
        index, arr = _build(pts, cell)
        t = np.asarray(target, dtype=float)
        np.testing.assert_array_equal(
            index.near_ids(arr, t, radius),
            near_ids_bruteforce(arr, t, radius),
        )

    @given(pts=st.lists(point, min_size=1, max_size=120), cell=cell_size)
    @settings(max_examples=60, deadline=None)
    def test_boundary_points_are_inclusive(self, pts, cell):
        # Radius equal to an exact stored distance: the contract is
        # d2 <= r*r, so the boundary point must be returned.
        index, arr = _build(pts, cell)
        t = np.zeros(3)
        mid = len(arr) // 2
        d = np.sqrt(np.sum(arr * arr, axis=1))
        # sqrt can round down, so d[mid]**2 may fall a ulp short of the
        # stored d2 — both twins must agree either way; one ulp of
        # head-room then guarantees the boundary point is included.
        for radius in (float(d[mid]), math.nextafter(float(d[mid]), math.inf)):
            got = index.near_ids(arr, t, radius)
            want = near_ids_bruteforce(arr, t, radius)
            np.testing.assert_array_equal(got, want)
        assert mid in got.tolist()

    def test_empty_and_negative_radius(self):
        index = GridIndex(cell_size=1.0)
        t = np.zeros(3)
        assert index.near_ids(np.zeros((0, 3)), t, 1.0).size == 0
        index, arr = _build([(1.0, 0.0, 0.0)], 1.0)
        assert index.near_ids(arr, t, -1.0).size == 0


class TestIncremental:
    @given(pts=st.lists(point, min_size=2, max_size=150),
           targets=st.lists(point, min_size=1, max_size=5),
           cell=cell_size)
    @settings(max_examples=80, deadline=None)
    def test_queries_interleaved_with_appends(self, pts, targets, cell):
        # Mirrors planner usage: the point set grows one append at a
        # time and both query kinds run against every prefix.
        index = GridIndex(cell_size=cell)
        arr = np.asarray(pts, dtype=float).reshape(-1, 3)
        for n, row in enumerate(arr, start=1):
            assert index.insert(row) == n - 1
            prefix = arr[:n]
            for target in targets:
                t = np.asarray(target, dtype=float)
                assert index.nearest(prefix, t) == nearest_bruteforce(
                    prefix, t
                )
                np.testing.assert_array_equal(
                    index.near_ids(prefix, t, 2.0),
                    near_ids_bruteforce(prefix, t, 2.0),
                )
        assert len(index) == len(arr)

    def test_crosses_brute_threshold(self):
        # The index switches from brute fallback to bucket walks at
        # BRUTE_THRESHOLD; answers must not change across the seam.
        rng = np.random.default_rng(7)
        n = GridIndex.BRUTE_THRESHOLD * 3
        arr = np.round(rng.uniform(-10.0, 10.0, size=(n, 3)), 1)
        index = GridIndex(cell_size=1.5)
        t = np.array([0.3, -0.2, 0.1])
        for i in range(n):
            index.insert(arr[i])
            prefix = arr[: i + 1]
            assert index.nearest(prefix, t) == nearest_bruteforce(prefix, t)
            np.testing.assert_array_equal(
                index.near_ids(prefix, t, 3.0),
                near_ids_bruteforce(prefix, t, 3.0),
            )


def test_invalid_cell_size_rejected():
    with pytest.raises(ValueError):
        GridIndex(cell_size=0.0)
    with pytest.raises(ValueError):
        GridIndex(cell_size=-1.0)


def test_negative_coordinates_bucket_correctly():
    # math.floor (not int()) must be used for cell ids: -0.3 lives in
    # cell -1, not cell 0.
    index = GridIndex(cell_size=1.0)
    arr = np.array([[-0.3, -0.3, -0.3], [0.3, 0.3, 0.3]])
    for row in arr:
        index.insert(row)
    assert index._cell_of(arr[0]) == (-1, -1, -1)
    assert index._cell_of(arr[1]) == (0, 0, 0)
    t = np.array([-0.4, -0.4, -0.4])
    assert index.nearest(arr, t) == nearest_bruteforce(arr, t) == 0
