"""Tests for the rotor power model (Eq. 1) and the battery model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.state import VehicleState
from repro.energy import (
    COMMERCIAL_PACKS,
    Battery,
    MATRICE_100_COEFFICIENTS,
    PowerModelCoefficients,
    RotorPowerModel,
    SOLO_COEFFICIENTS,
)
from repro.world.geometry import vec


class TestRotorPowerModel:
    def test_hover_power_in_paper_range(self):
        """Off-the-shelf MAVs draw 300-400 W for the rotors (Section I)."""
        model = RotorPowerModel(mass_kg=2.4)
        assert 250.0 <= model.hover_power() <= 400.0

    def test_power_increases_with_speed(self):
        model = RotorPowerModel()
        powers = [model.steady_flight_power(v) for v in (0, 2, 5, 10)]
        assert powers == sorted(powers)
        assert powers[-1] > powers[0]

    def test_power_increases_with_acceleration(self):
        model = RotorPowerModel()
        low = model.power(vec(5, 0, 0), vec(0, 0, 0))
        high = model.power(vec(5, 0, 0), vec(3, 0, 0))
        assert high > low

    def test_vertical_motion_costs_power(self):
        model = RotorPowerModel()
        hover = model.hover_power()
        climb = model.power(vec(0, 0, 3), vec(0, 0, 0))
        assert climb > hover

    def test_power_floored_at_hover(self):
        """Rotors cannot regenerate: braking never reports below hover."""
        model = RotorPowerModel()
        headwind = model.power(
            vec(5, 0, 0), vec(0, 0, 0), wind_xy=np.array([-50.0, 0.0])
        )
        assert headwind >= model.hover_power()

    def test_power_for_state(self):
        model = RotorPowerModel()
        s = VehicleState(velocity=vec(4, 0, 0), acceleration=vec(1, 0, 0))
        assert model.power_for_state(s) == model.power(s.velocity, s.acceleration)

    def test_heavier_drone_draws_more(self):
        light = RotorPowerModel(mass_kg=1.5)
        heavy = RotorPowerModel(mass_kg=3.5)
        assert heavy.hover_power() > light.hover_power()

    def test_coefficients_validation(self):
        with pytest.raises(ValueError):
            PowerModelCoefficients(beta=(1.0, 2.0))

    def test_solo_hover_near_measured(self):
        """Fig. 9a: the 3DR Solo rotors draw ~287 W."""
        model = RotorPowerModel(
            coefficients=SOLO_COEFFICIENTS, mass_kg=1.8
        )
        assert model.hover_power() == pytest.approx(287.0, rel=0.2)

    @given(
        v=st.floats(0, 15, allow_nan=False), a=st.floats(0, 5, allow_nan=False)
    )
    @settings(max_examples=40, deadline=None)
    def test_power_always_positive(self, v, a):
        model = RotorPowerModel()
        assert model.power(vec(v, 0, 0), vec(a, 0, 0)) > 0


class TestBattery:
    def test_initial_state(self):
        b = Battery(capacity_mah=5000, cells=4)
        assert b.soc == pytest.approx(1.0)
        assert b.remaining_percent == pytest.approx(100.0)
        assert not b.depleted

    def test_capacity_conversion(self):
        b = Battery(capacity_mah=1000, cells=3)
        assert b.capacity_coulombs == pytest.approx(3600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0)
        with pytest.raises(ValueError):
            Battery(capacity_mah=100, cells=0)

    def test_draw_reduces_charge(self):
        b = Battery(capacity_mah=5000, cells=4)
        before = b.remaining_coulombs
        b.draw(power_w=100.0, dt=10.0)
        assert b.remaining_coulombs < before

    def test_coulomb_counting_matches_hand_calculation(self):
        b = Battery(capacity_mah=5000, cells=4, internal_resistance_ohm=0.0)
        v = b.open_circuit_voltage()
        used = b.draw(power_w=v * 2.0, dt=10.0)  # 2 A for 10 s
        assert used == pytest.approx(20.0, rel=1e-6)

    def test_depletes_under_sustained_load(self):
        b = Battery(capacity_mah=100, cells=3)
        while not b.depleted:
            b.draw(power_w=500.0, dt=1.0)
        assert b.soc == 0.0

    def test_voltage_drops_with_discharge(self):
        b = Battery(capacity_mah=1000, cells=4)
        v_full = b.open_circuit_voltage()
        b.draw(power_w=200.0, dt=3600.0 * 0.5)
        v_half = b.open_circuit_voltage()
        assert v_half < v_full

    def test_voltage_knee_below_10_percent(self):
        b = Battery(capacity_mah=1000, cells=1)
        b._remaining_coulombs = b.capacity_coulombs * 0.05
        v = b.open_circuit_voltage()
        assert v < b.CELL_V_EMPTY + 0.4 * (b.CELL_V_FULL - b.CELL_V_EMPTY)

    def test_loaded_voltage_sags(self):
        b = Battery(capacity_mah=5000, cells=4, internal_resistance_ohm=0.1)
        assert b.loaded_voltage(500.0) < b.open_circuit_voltage()

    def test_reset(self):
        b = Battery(capacity_mah=1000, cells=3)
        b.draw(300.0, 60.0)
        b.reset()
        assert b.soc == pytest.approx(1.0)
        assert b.energy_drawn_j == 0.0

    def test_energy_accounting(self):
        b = Battery(capacity_mah=5000, cells=4)
        b.draw(100.0, 10.0)
        b.draw(50.0, 10.0)
        assert b.energy_drawn_j == pytest.approx(1500.0)

    def test_negative_inputs_rejected(self):
        b = Battery()
        with pytest.raises(ValueError):
            b.draw(-1.0, 1.0)
        with pytest.raises(ValueError):
            b.draw(1.0, -1.0)

    def test_endurance_estimate_scales_inversely_with_power(self):
        b = Battery(capacity_mah=5000, cells=4)
        t_low = b.endurance_estimate_s(100.0)
        t_high = b.endurance_estimate_s(400.0)
        assert t_low > 3 * t_high

    def test_endurance_infinite_at_zero_power(self):
        assert Battery().endurance_estimate_s(0.0) == float("inf")

    def test_bigger_pack_lasts_longer(self):
        """Fig. 2a: higher battery capacity -> higher endurance."""
        small = Battery(capacity_mah=1500, cells=3)
        large = Battery(capacity_mah=5700, cells=6)
        assert large.endurance_estimate_s(300.0) > small.endurance_estimate_s(300.0)

    def test_commercial_pack_catalog(self):
        assert "3DR Solo" in COMMERCIAL_PACKS
        for name, spec in COMMERCIAL_PACKS.items():
            b = Battery(**spec)
            assert b.capacity_mah > 0

    @given(
        p=st.floats(1, 1000, allow_nan=False),
        dt=st.floats(0.01, 100, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_soc_monotone_nonincreasing(self, p, dt):
        b = Battery(capacity_mah=5000, cells=4)
        prev = b.soc
        for _ in range(5):
            b.draw(p, dt)
            assert b.soc <= prev + 1e-12
            prev = b.soc
