"""Tests for the ROS-like middleware: clock, topics, services, nodes."""

import pytest

from repro.compute import ComputeScheduler, JETSON_TX2, KernelModel, PlatformConfig
from repro.middleware import (
    CallbackNode,
    Node,
    NodeGraph,
    ServiceError,
    ServiceRegistry,
    SimClock,
    Timer,
    Topic,
    TopicRegistry,
)


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now == pytest.approx(1.5)

    def test_cannot_go_backwards(self):
        clock = SimClock(now=5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0


class TestTimer:
    def test_fires_at_period(self):
        clock = SimClock()
        timer = Timer(clock, period=1.0)
        assert timer.due()  # offset 0: fires immediately
        assert not timer.due()
        clock.advance(1.0)
        assert timer.due()

    def test_catch_up_without_burst(self):
        clock = SimClock()
        timer = Timer(clock, period=1.0)
        timer.due()
        clock.advance(5.0)
        assert timer.due()
        assert not timer.due()  # only one fire despite 5 periods elapsed

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            Timer(SimClock(), period=0.0)

    def test_offset(self):
        clock = SimClock()
        timer = Timer(clock, period=1.0, offset=0.5)
        assert not timer.due()
        clock.advance(0.6)
        assert timer.due()


class TestTopics:
    def test_publish_subscribe(self):
        topic = Topic("depth")
        sub = topic.subscribe()
        topic.publish("frame-1", stamp=0.1)
        msg = sub.pop()
        assert msg.data == "frame-1"
        assert msg.stamp == 0.1

    def test_multiple_subscribers_each_get_copy(self):
        topic = Topic("t")
        a, b = topic.subscribe(), topic.subscribe()
        topic.publish(42, stamp=0.0)
        assert a.pop().data == 42
        assert b.pop().data == 42

    def test_queue_drops_oldest(self):
        """ROS queue_size semantics: the frame-dropping behaviour SAR's
        detection study depends on."""
        topic = Topic("images")
        sub = topic.subscribe(queue_size=2)
        for i in range(5):
            topic.publish(i, stamp=float(i))
        assert sub.dropped == 3
        assert sub.pop().data == 3
        assert sub.pop().data == 4
        assert sub.pop() is None

    def test_latest_discards_backlog(self):
        topic = Topic("t")
        sub = topic.subscribe(queue_size=10)
        for i in range(4):
            topic.publish(i, stamp=float(i))
        assert sub.latest().data == 3
        assert sub.pending() == 0

    def test_sequence_numbers_increase(self):
        topic = Topic("t")
        sub = topic.subscribe()
        topic.publish("a", 0.0)
        topic.publish("b", 0.1)
        first, second = sub.pop(), sub.pop()
        assert second.seq > first.seq

    def test_registry_creates_once(self):
        reg = TopicRegistry()
        t1 = reg.topic("depth")
        t2 = reg.topic("depth")
        assert t1 is t2
        assert "depth" in reg
        assert reg.names() == ["depth"]

    def test_queue_size_validation(self):
        with pytest.raises(ValueError):
            Topic("t").subscribe(queue_size=0)


class TestServices:
    def test_call(self):
        reg = ServiceRegistry()
        reg.advertise("double", lambda x: x * 2)
        assert reg.call("double", 21) == 42

    def test_missing_service(self):
        reg = ServiceRegistry()
        with pytest.raises(ServiceError):
            reg.call("nope", None)

    def test_handler_exception_wrapped(self):
        reg = ServiceRegistry()

        def boom(_):
            raise RuntimeError("kaboom")

        reg.advertise("boom", boom)
        with pytest.raises(ServiceError, match="kaboom"):
            reg.call("boom", None)

    def test_call_count(self):
        reg = ServiceRegistry()
        svc = reg.advertise("ping", lambda x: x)
        svc.call(1)
        svc.call(2)
        assert svc.call_count == 2


def _graph(cores=4):
    clock = SimClock()
    scheduler = ComputeScheduler(
        config=PlatformConfig(JETSON_TX2, cores, 2.2),
        kernel_model=KernelModel(),
    )
    return NodeGraph(clock=clock, scheduler=scheduler)


class TestNodeGraph:
    def test_node_runs_kernel_and_publishes(self):
        graph = _graph()
        results = []

        def try_start(node, g):
            if node.jobs_completed == 0:
                node.run_kernel("collision_check", context="req-1")
                return True
            return False

        def on_complete(node, g, job, context):
            node.publish("results", context)

        producer = CallbackNode("producer", try_start, on_complete)
        graph.add_node(producer)
        sub = graph.topics.topic("results").subscribe()
        for _ in range(20):
            graph.spin_once(0.01)
        msg = sub.pop()
        assert msg is not None
        assert msg.data == "req-1"
        assert producer.jobs_completed == 1

    def test_pipeline_of_two_nodes(self):
        """A two-stage dataflow: camera -> detector, as in Fig. 7."""
        graph = _graph()

        def cam_start(node, g):
            if g.clock.now < 0.001 and node.jobs_completed == 0:
                node.run_kernel("point_cloud")
                return True
            return False

        def cam_done(node, g, job, ctx):
            node.publish("cloud", "scan")

        camera = CallbackNode("camera", cam_start, cam_done)

        class Detector(Node):
            def on_attach(self, g):
                self.sub = self.subscribe("cloud")
                self.outputs = []

            def try_start(self, g):
                msg = self.sub.pop()
                if msg is not None:
                    self.run_kernel("octomap", context=msg.data)
                    return True
                return False

            def on_complete(self, g, job, ctx):
                self.outputs.append(ctx)

        detector = Detector("detector")
        graph.add_node(camera)
        graph.add_node(detector)
        for _ in range(100):
            graph.spin_once(0.02)
        assert detector.outputs == ["scan"]

    def test_busy_node_not_restarted(self):
        graph = _graph()
        starts = []

        def try_start(node, g):
            starts.append(g.clock.now)
            node.run_kernel("octomap")  # 500 ms
            return True

        graph.add_node(CallbackNode("n", try_start))
        for _ in range(10):
            graph.spin_once(0.01)
        assert len(starts) == 1  # still busy, no second start

    def test_node_lookup(self):
        graph = _graph()
        node = CallbackNode("alpha")
        graph.add_node(node)
        assert graph.node("alpha") is node
        with pytest.raises(KeyError):
            graph.node("beta")

    def test_unattached_node_errors(self):
        node = CallbackNode("lonely")
        with pytest.raises(RuntimeError):
            node.publish("t", 1)
        with pytest.raises(RuntimeError):
            node.run_kernel("pid")

    def test_clock_and_scheduler_stay_in_sync(self):
        graph = _graph()
        for _ in range(7):
            graph.spin_once(0.5)
        assert graph.clock.now == pytest.approx(3.5)
        assert graph.scheduler.now == pytest.approx(3.5)
