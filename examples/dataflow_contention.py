#!/usr/bin/env python
"""Node-graph contention study: the Fig. 7 dataflows on the middleware.

Builds each MAVBench application's publisher/subscriber node graph on the
simulated ROS substrate and spins it on two TX2 operating points,
reporting per-node throughput and dropped frames.  This surfaces the
effect the heatmaps aggregate away: on a slow platform, the 30 Hz camera
outruns the detector, queues overflow, and frames are dropped — the
paper's "a faster object detection kernel prevents the drone from
missing sampled frames".

Run:
    python examples/dataflow_contention.py
"""

from repro.analysis import format_table
from repro.compute import ComputeScheduler, JETSON_TX2, KernelModel, PlatformConfig
from repro.core.dataflow import build_dataflow, spin_dataflow
from repro.middleware import NodeGraph, SimClock


def spin(name: str, cores: int, freq: float, duration_s: float = 10.0):
    graph = NodeGraph(
        clock=SimClock(),
        scheduler=ComputeScheduler(
            config=PlatformConfig(JETSON_TX2, cores, freq),
            kernel_model=KernelModel(workload=name),
        ),
    )
    nodes = build_dataflow(name, graph)
    stats = spin_dataflow(graph, nodes, duration_s=duration_s)
    return stats, graph


def main() -> None:
    for name in ("search_rescue", "aerial_photography"):
        print(f"\n=== {name} dataflow, 10 s of simulated time ===")
        rows = []
        for cores, freq in [(4, 2.2), (2, 0.8)]:
            stats, graph = spin(name, cores, freq)
            for node, processed in sorted(stats.processed.items()):
                rows.append(
                    (
                        f"{cores}c/{freq}GHz",
                        node,
                        processed,
                        stats.dropped.get(node, 0),
                    )
                )
        print(
            format_table(
                ["platform", "node", "frames processed", "frames dropped"],
                rows,
            )
        )


if __name__ == "__main__":
    main()
