#!/usr/bin/env python
"""Compute-scaling study: how cores x frequency shape mission QoF.

Reproduces the experiment behind the paper's Section V-C heatmaps
(Figs. 10-14) on a reduced grid: fly 3D Mapping at the slow, middle, and
fast TX2 operating points and report velocity / mission time / energy.

The headline effect to observe: faster compute -> shorter hover (planning
finishes sooner) and higher permitted velocity (Eq. 2) -> shorter mission
-> *less total energy*, because the rotors dominate power draw ~20X over
the compute subsystem.

Run:
    python examples/compute_scaling_study.py [workload]
"""

import sys

from repro.analysis import format_table
from repro import run_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mapping"
    points = [(2, 0.8), (3, 1.5), (4, 2.2)]
    rows = []
    print(f"Sweeping '{workload}' across TX2 operating points...\n")
    for cores, freq in points:
        result = run_workload(workload, cores=cores, frequency_ghz=freq, seed=1)
        r = result.report
        rows.append(
            [
                f"{cores}c @ {freq} GHz",
                r.average_velocity_ms,
                r.mission_time_s,
                r.hover_time_s,
                r.total_energy_j / 1000.0,
                "yes" if r.success else "no",
            ]
        )
    print(
        format_table(
            ["operating point", "avg vel (m/s)", "mission (s)",
             "hover (s)", "energy (kJ)", "success"],
            rows,
            title=f"Compute scaling on '{workload}' (cf. paper Figs. 10-14)",
        )
    )
    slow, fast = rows[0], rows[-1]
    print(
        f"\nfast corner vs slow corner: "
        f"{slow[2] / fast[2]:.1f}x mission time, "
        f"{slow[4] / fast[4]:.1f}x energy"
    )


if __name__ == "__main__":
    main()
