#!/usr/bin/env python
"""Compute-scaling study: how cores x frequency shape mission QoF.

Reproduces the experiment behind the paper's Section V-C heatmaps
(Figs. 10-14) on a reduced grid: fly 3D Mapping at the slow, middle, and
fast TX2 operating points and report velocity / mission time / energy.

The headline effect to observe: faster compute -> shorter hover (planning
finishes sooner) and higher permitted velocity (Eq. 2) -> shorter mission
-> *less total energy*, because the rotors dominate power draw ~20X over
the compute subsystem.

The study runs on the campaign engine: the three missions are declared
as one ``CampaignSpec`` and executed in parallel worker processes, with
an optional on-disk store so a re-run (or a crash) costs nothing.

Run:
    python examples/compute_scaling_study.py [workload] [--jobs N] [--store PATH]
"""

import argparse

from repro.analysis import format_table
from repro.campaign import CampaignSpec, CampaignStore, run_campaign, success_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="mapping")
    parser.add_argument(
        "--jobs", type=int, default=3,
        help="worker processes (one per operating point by default)",
    )
    parser.add_argument(
        "--store", default=None,
        help="JSONL campaign store; reruns become cache hits",
    )
    args = parser.parse_args()

    spec = CampaignSpec(
        workloads=[args.workload],
        grid=[(2, 0.8), (3, 1.5), (4, 2.2)],
        seeds=[1],
    )
    store = CampaignStore(args.store) if args.store else None
    print(
        f"Sweeping '{args.workload}' across TX2 operating points "
        f"({spec.run_count} missions, {args.jobs} workers)...\n"
    )
    campaign = run_campaign(spec, jobs=args.jobs, store=store)
    if campaign.failed:
        for record in campaign.errors:
            print(f"FAILED {record['run_key']}: {record['error']}")
        raise SystemExit(1)

    rows = []
    for record in campaign.records:
        report = record["report"]
        cfg = record["config"]
        rows.append(
            [
                f"{cfg['cores']}c @ {cfg['frequency_ghz']} GHz",
                report["average_velocity_ms"],
                report["mission_time_s"],
                report["hover_time_s"],
                report["total_energy_j"] / 1000.0,
                "yes" if report["success"] else "no",
            ]
        )
    print(
        format_table(
            ["operating point", "avg vel (m/s)", "mission (s)",
             "hover (s)", "energy (kJ)", "success"],
            rows,
            title=f"Compute scaling on '{args.workload}' (cf. paper Figs. 10-14)",
        )
    )
    flat = success_table(campaign.records)
    slow, fast = flat[0], flat[-1]
    print(
        f"\nfast corner vs slow corner: "
        f"{slow['mission_time_s'] / fast['mission_time_s']:.1f}x mission time, "
        f"{slow['energy_kj'] / fast['energy_kj']:.1f}x energy"
    )
    print(f"({campaign.summary()})")
    if store is not None:
        print(f"store: {store.path}")


if __name__ == "__main__":
    main()
