#!/usr/bin/env python
"""Quickstart: run one MAVBench workload end to end.

Assembles the full closed-loop stack — simulated world, RGB-D/IMU/GPS
sensors, quadrotor dynamics, the TX2 compute model, ROS-like middleware,
and the rotor-power/battery models — and flies the Package Delivery
mission at the TX2's top operating point (4 cores, 2.2 GHz).

Run:
    python examples/quickstart.py
"""

from repro import run_workload


def main() -> None:
    print("Flying Package Delivery on a simulated DJI Matrice 100")
    print("Companion computer: Jetson TX2 @ 4 cores, 2.2 GHz\n")

    result = run_workload(
        "package_delivery", cores=4, frequency_ghz=2.2, seed=1
    )
    report = result.report

    print(f"mission outcome      : {'success' if report.success else 'FAILED'}")
    print(f"mission time         : {report.mission_time_s:8.1f} s")
    print(f"flight distance      : {report.flight_distance_m:8.1f} m")
    print(f"average velocity     : {report.average_velocity_ms:8.2f} m/s")
    print(f"hover time           : {report.hover_time_s:8.1f} s")
    print(f"total energy         : {report.total_energy_j / 1000:8.1f} kJ")
    print(f"  rotors             : {report.rotor_energy_j / 1000:8.1f} kJ")
    print(f"  compute            : {report.compute_energy_j / 1000:8.1f} kJ")
    print(f"battery remaining    : {report.battery_remaining_percent:8.1f} %")
    print(f"re-plans             : {report.extra.get('replans', 0):8.0f}")

    print("\nPer-kernel latency on the companion computer:")
    for kernel, stats in sorted(result.kernel_stats.items()):
        print(
            f"  {kernel:<24s} x{stats['count']:<5.0f} "
            f"mean {stats['mean_s'] * 1000:7.1f} ms  "
            f"max {stats['max_s'] * 1000:7.1f} ms"
        )


if __name__ == "__main__":
    main()
