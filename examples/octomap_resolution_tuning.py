#!/usr/bin/env python
"""OctoMap resolution tuning — the paper's energy case study (Figs. 17-19).

Part 1 measures *our actual octree implementation*: insertion time of the
same depth scans at resolutions from 0.15 m to 1.0 m (Fig. 18's
accuracy-vs-processing-time trade-off), plus the perceived-map inflation
that closes doorways at coarse resolutions (Fig. 17).

Part 2 flies Package Delivery through the mixed outdoor/indoor campus
world under three policies — static fine (0.15 m), static coarse
(0.80 m), and the dynamic density-based switcher — and compares flight
time and battery remaining (Fig. 19).

Run:
    python examples/octomap_resolution_tuning.py
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core.api import make_simulation
from repro.core.workloads import PackageDeliveryWorkload
from repro.core.workloads.resolution_policy import (
    COARSE_RESOLUTION,
    FINE_RESOLUTION,
    density_policy,
    static_policy,
)
from repro.perception import OctoMap, depth_to_point_cloud
from repro.sensors import CameraIntrinsics, RgbdCamera
from repro.world import campus_world, vec


def measure_insertion_times() -> None:
    """Fig. 18: processing time vs resolution on the real octree."""
    world = campus_world(seed=3)
    camera = RgbdCamera(intrinsics=CameraIntrinsics(width=64, height=48))
    scans = [
        depth_to_point_cloud(
            camera.capture_depth(world, vec(x, 0.0, 2.0), yaw=0.0)
        )
        for x in (-30.0, -20.0, -10.0, -2.0)
    ]
    rows = []
    for resolution in (0.15, 0.25, 0.4, 0.5, 0.8, 1.0):
        om = OctoMap(resolution=resolution, bounds=world.bounds)
        start = time.perf_counter()
        for scan in scans:
            om.insert_scan(scan, carve_rays=60)
        elapsed_ms = (time.perf_counter() - start) / len(scans) * 1000
        rows.append([resolution, elapsed_ms, om.memory_cells()])
    print(
        format_table(
            ["resolution (m)", "insert time (ms/scan)", "stored voxels"],
            rows,
            title="Fig. 18: OctoMap processing time vs resolution (measured)",
        )
    )
    print()


def show_door_inflation() -> None:
    """Fig. 17: coarse voxels inflate walls until doorways disappear."""
    world = campus_world(seed=3, door_width=1.4)
    camera = RgbdCamera(intrinsics=CameraIntrinsics(width=64, height=48))
    door_x = 15.0  # building west face: world west edge + outdoor length
    # Scan the building entrance from outside.
    scans = [
        depth_to_point_cloud(
            camera.capture_depth(world, vec(door_x + dx, y, 2.0), yaw=0.0)
        )
        for dx in (-12.0, -8.0, -4.0)
        for y in (-6.0, -4.0, -2.0)
    ]
    rows = []
    for resolution in (0.15, 0.5, 0.8):
        om = OctoMap(resolution=resolution, bounds=world.bounds)
        for scan in scans:
            om.insert_scan(scan, carve_rays=80)
        # Probe the entrance doorway (centered on the first room, y=-4).
        blocked = om.is_occupied((door_x + 0.1, -4.0, 2.0))
        rows.append([resolution, "blocked" if blocked else "open"])
    print(
        format_table(
            ["resolution (m)", "entrance doorway perceived as"],
            rows,
            title="Fig. 17: perceived passability of a 1.4 m doorway",
        )
    )
    print()


def fly_with_policies() -> None:
    """Fig. 19: static fine / static coarse / dynamic resolution flights."""
    policies = [
        ("static 0.15 m", static_policy(FINE_RESOLUTION), FINE_RESOLUTION),
        ("static 0.80 m", static_policy(COARSE_RESOLUTION), COARSE_RESOLUTION),
        ("dynamic", density_policy(), COARSE_RESOLUTION),
    ]
    rows = []
    for label, policy, initial in policies:
        workload = PackageDeliveryWorkload(
            seed=3,
            world=campus_world(seed=3, outdoor_length=80.0),
            goal=np.array([34.5, -4.0, 2.0]),  # inside the first room
            altitude=2.0,
            cruise_speed=8.0,
            octomap_resolution=initial,
            resolution_policy=policy,
        )
        sim = make_simulation(workload, cores=4, frequency_ghz=2.2, seed=3)
        report = workload.run()
        rows.append(
            [
                label,
                "success" if report.success else
                f"FAIL ({report.failure_reason})",
                report.mission_time_s,
                report.battery_remaining_percent,
            ]
        )
    print(
        format_table(
            ["policy", "outcome", "flight time (s)", "battery left (%)"],
            rows,
            title="Fig. 19: static vs dynamic OctoMap resolution "
            "(package delivery through the campus)",
        )
    )


def main() -> None:
    measure_insertion_times()
    show_door_inflation()
    fly_with_policies()


if __name__ == "__main__":
    main()
