#!/usr/bin/env python
"""Sensor-cloud offload — the paper's performance case study (Fig. 16).

Compares a fully-on-edge drone (all kernels on the TX2) against a
sensor-cloud drone that ships its planning-stage kernels to an i7 + GTX
1080 over a 1 Gb/s "future 5G" link, flying the 3D Mapping workload.

The paper's result: ~3X faster planning, hover time collapses, mission
time drops by up to 50%.  An LTE ablation shows why the link matters.

Run:
    python examples/cloud_offload.py
"""

from repro.analysis import format_table
from repro.compute import (
    CloudOffloadModel,
    FIVE_G_LINK,
    KernelModel,
    LTE_LINK,
)
from repro.core.api import make_simulation
from repro.core.workloads import MappingWorkload


def run_mapping(offload_model=None, label="edge"):
    """Fly 3D Mapping; optionally route planning kernels via the cloud."""
    workload = MappingWorkload(seed=2)
    sim = make_simulation(workload, cores=4, frequency_ghz=2.2, seed=2)
    if offload_model is not None:
        # Replace the frontier-exploration kernel's latency with the
        # offloaded (network + cloud compute) latency.
        offload_model.kernel_model = sim.kernel_model
        effective_s = offload_model.effective_runtime_s("frontier_exploration")
        from repro.compute import KernelProfile

        sim.kernel_model.set_override(
            "frontier_exploration",
            KernelProfile(
                name="frontier_exploration",
                base_ms=effective_s * 1000.0,
                serial_fraction=1.0,  # latency fixed by network + cloud
                freq_exponent=0.0,
                jitter=0.1,
            ),
        )
    report = workload.run()
    return label, report


def main() -> None:
    print("3D Mapping: fully-on-edge vs sensor-cloud (cf. Fig. 16)\n")
    rows = []
    for label, model in [
        ("edge (TX2 only)", None),
        ("sensor-cloud (5G, 1 Gb/s)", CloudOffloadModel(link=FIVE_G_LINK)),
        ("sensor-cloud (LTE)", CloudOffloadModel(link=LTE_LINK)),
    ]:
        name, report = run_mapping(model, label)
        rows.append(
            [
                name,
                report.mission_time_s,
                report.hover_time_s,
                report.total_energy_j / 1000.0,
                "yes" if report.success else "no",
            ]
        )
    print(
        format_table(
            ["configuration", "mission (s)", "hover (s)", "energy (kJ)",
             "success"],
            rows,
        )
    )
    edge_t, cloud_t = rows[0][1], rows[1][1]
    print(
        f"\ncloud support cuts mission time by "
        f"{100 * (1 - cloud_t / edge_t):.0f}% "
        f"(paper: up to 50%)"
    )
    km = KernelModel(workload="mapping")
    model = CloudOffloadModel(kernel_model=km)
    print(
        f"planning kernel speedup from offload: "
        f"{model.speedup('frontier_exploration'):.1f}x (paper: ~3x)"
    )


if __name__ == "__main__":
    main()
