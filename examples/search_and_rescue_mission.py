#!/usr/bin/env python
"""Search and Rescue: explore a disaster site until a survivor is found.

Demonstrates the most kernel-rich MAVBench workload — point cloud +
OctoMap + SLAM + frontier exploration + YOLO-class detection running
concurrently on the modeled TX2 — and the detector plug-and-play knob
(swap YOLO for HOG and watch recall and find time change).

Run:
    python examples/search_and_rescue_mission.py
"""

from repro.analysis import format_table
from repro.core.api import make_simulation
from repro.core.workloads import SearchRescueWorkload


def fly(detector_name: str, seed: int = 2):
    workload = SearchRescueWorkload(detector_name=detector_name, seed=seed)
    sim = make_simulation(workload, cores=4, frequency_ghz=2.2, seed=seed)
    report = workload.run()
    return workload, report


def main() -> None:
    rows = []
    for detector in ("yolo", "hog"):
        workload, report = fly(detector)
        rows.append(
            [
                detector,
                "found" if report.success else "not found",
                report.mission_time_s,
                report.extra.get("coverage", 0.0),
                int(report.extra.get("detection_frames", 0)),
                report.total_energy_j / 1000.0,
            ]
        )
    print(
        format_table(
            ["detector", "survivor", "mission (s)", "site coverage",
             "frames", "energy (kJ)"],
            rows,
            title="Search and Rescue with plug-and-play detectors",
        )
    )


if __name__ == "__main__":
    main()
