#!/usr/bin/env python
"""Sensor-noise reliability study — the paper's Table II.

Injects Gaussian noise (std 0 to 1.5 m) into the RGB-D depth channel and
flies Package Delivery repeatedly: noise inflates perceived obstacles,
forcing more re-plans and longer missions, and at high noise some runs
fail outright.

Run:
    python examples/sensor_noise_reliability.py
"""

import numpy as np

from repro import run_workload
from repro.analysis import format_table


def main() -> None:
    noise_levels = [0.0, 0.5, 1.0, 1.5]
    seeds = [1, 2, 3]
    rows = []
    print("Package delivery under depth-image noise (cf. Table II)\n")
    for std in noise_levels:
        times, replans, failures = [], [], 0
        for seed in seeds:
            result = run_workload(
                "package_delivery",
                cores=4,
                frequency_ghz=2.2,
                seed=seed,
                depth_noise_std=std,
            )
            report = result.report
            if report.success:
                times.append(report.mission_time_s)
            else:
                failures += 1
            replans.append(report.extra.get("replans", 0))
        rows.append(
            [
                std,
                100.0 * failures / len(seeds),
                float(np.mean(replans)),
                float(np.mean(times)) if times else float("nan"),
            ]
        )
    print(
        format_table(
            ["noise std (m)", "failure rate (%)", "re-plans",
             "mission time (s)"],
            rows,
        )
    )
    print(
        "\nExpected shape (Table II): re-plans and mission time grow with "
        "noise; failures appear at 1.5 m."
    )


if __name__ == "__main__":
    main()
