#!/usr/bin/env python
"""Flight-log export: fly a mission, save the trace, inspect it.

Runs the Scanning workload, exports the full QoF trace as CSV and the
mission document as JSON, then reloads the JSON and summarizes the power
profile per flight phase — the kind of post-hoc analysis the paper's
wattmeter data (Fig. 9b) enables.

Run:
    python examples/flight_log_export.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import format_table, load_mission, write_csv, write_json
from repro.core.api import make_simulation
from repro.core.workloads import ScanningWorkload


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="mavbench-logs-")
    )
    out_dir.mkdir(parents=True, exist_ok=True)

    workload = ScanningWorkload(area_width=60.0, area_length=36.0, seed=1)
    sim = make_simulation(workload, cores=4, frequency_ghz=2.2, seed=1)
    report = workload.run()
    print(report.summary())

    csv_path = out_dir / "scanning_trace.csv"
    json_path = out_dir / "scanning_mission.json"
    rows = write_csv(sim.qof, str(csv_path), decimate=4)
    write_json(
        report,
        str(json_path),
        recorder=sim.qof,
        decimate=20,
        metadata={"workload": "scanning", "cores": 4, "frequency_ghz": 2.2},
    )
    print(f"\nwrote {rows} trace rows to {csv_path}")
    print(f"wrote mission document to {json_path}")

    doc = load_mission(str(json_path))
    trace = doc["trace"]
    hovering = [r for r in trace if r["hovering"]]
    flying = [r for r in trace if not r["hovering"] and r["speed_ms"] > 0.5]
    rows = []
    for label, samples in [("hovering", hovering), ("flying", flying)]:
        if not samples:
            continue
        avg_power = sum(r["total_power_w"] for r in samples) / len(samples)
        avg_speed = sum(r["speed_ms"] for r in samples) / len(samples)
        rows.append([label, len(samples), avg_speed, avg_power])
    print()
    print(
        format_table(
            ["phase", "samples", "avg speed (m/s)", "avg power (W)"],
            rows,
            title="Power by phase, reloaded from the mission document",
        )
    )


if __name__ == "__main__":
    main()
